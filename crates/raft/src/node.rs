//! The Raft state machine for one node.

use crate::message::{Envelope, LogEntry, Message, NodeId, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A node's role in the current term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Cluster leader for the current term.
    Leader,
}

/// Returned by [`RaftNode::propose`] when the node is not the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeader;

impl fmt::Display for NotLeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("node is not the raft leader")
    }
}

impl std::error::Error for NotLeader {}

/// Timing configuration in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaftConfig {
    /// Minimum election timeout.
    pub election_timeout_min: u64,
    /// Maximum election timeout (randomized per restart).
    pub election_timeout_max: u64,
    /// Leader heartbeat interval.
    pub heartbeat_interval: u64,
    /// Run the PreVote protocol before real elections, so nodes returning
    /// from a partition cannot disrupt a stable leader with inflated terms.
    pub pre_vote: bool,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout_min: 10,
            election_timeout_max: 20,
            heartbeat_interval: 3,
            pre_vote: false,
        }
    }
}

/// The per-node Raft state machine.
///
/// Drive it with [`RaftNode::tick`] and [`RaftNode::receive`]; both return
/// outbound messages. Committed commands are drained with
/// [`RaftNode::take_committed`].
#[derive(Debug)]
pub struct RaftNode {
    id: NodeId,
    peers: Vec<NodeId>,
    config: RaftConfig,
    rng: StdRng,

    role: Role,
    current_term: u64,
    voted_for: Option<NodeId>,
    log: Vec<LogEntry>,
    commit_index: u64,
    last_applied: u64,

    /// Candidate state: votes received this term.
    votes: HashSet<NodeId>,
    /// Pre-vote state: grants received for the prospective campaign.
    pre_votes: HashSet<NodeId>,
    /// Index of the last entry compacted into the snapshot (0 = none).
    snapshot_index: u64,
    /// Term of that entry.
    snapshot_term: u64,
    /// The local snapshot, when one was taken or installed.
    snapshot: Option<Snapshot>,
    /// A snapshot installed from the leader, awaiting application pickup.
    pending_installed: Option<Snapshot>,
    /// Leader state: next index to send each follower.
    next_index: BTreeMap<NodeId, u64>,
    /// Leader state: highest index known replicated at each follower.
    match_index: BTreeMap<NodeId, u64>,

    ticks_since_reset: u64,
    election_deadline: u64,
}

impl RaftNode {
    /// Creates a follower with a seeded RNG for reproducible timeouts.
    pub fn new(id: NodeId, peers: Vec<NodeId>, config: RaftConfig, seed: u64) -> Self {
        let mut node = RaftNode {
            id,
            peers,
            config,
            rng: StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x9e3779b97f4a7c15)),
            role: Role::Follower,
            current_term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
            last_applied: 0,
            votes: HashSet::new(),
            pre_votes: HashSet::new(),
            snapshot_index: 0,
            snapshot_term: 0,
            snapshot: None,
            pending_installed: None,
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            ticks_since_reset: 0,
            election_deadline: 0,
        };
        node.reset_election_timer();
        node
    }

    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.current_term
    }

    /// Highest committed log index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Number of entries in the log.
    pub fn log_len(&self) -> u64 {
        self.log.len() as u64
    }

    /// The full log (tests and invariant checks).
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    fn reset_election_timer(&mut self) {
        self.ticks_since_reset = 0;
        self.election_deadline = self
            .rng
            .gen_range(self.config.election_timeout_min..=self.config.election_timeout_max);
    }

    fn last_log_index(&self) -> u64 {
        self.snapshot_index + self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log
            .last()
            .map(|e| e.term)
            .unwrap_or(self.snapshot_term)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else if index == self.snapshot_index {
            self.snapshot_term
        } else if index < self.snapshot_index {
            // Compacted away; only queried for consistency checks that the
            // snapshot already guarantees.
            self.snapshot_term
        } else {
            self.log
                .get((index - self.snapshot_index) as usize - 1)
                .map(|e| e.term)
                .unwrap_or(0)
        }
    }

    /// The entry at a 1-based log index, if not compacted.
    fn entry_at(&self, index: u64) -> Option<&LogEntry> {
        if index <= self.snapshot_index {
            None
        } else {
            self.log.get((index - self.snapshot_index) as usize - 1)
        }
    }

    fn majority(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    fn become_follower(&mut self, term: u64) {
        self.role = Role::Follower;
        self.current_term = term;
        self.voted_for = None;
        self.votes.clear();
        self.reset_election_timer();
    }

    fn become_candidate(&mut self) -> Vec<Envelope> {
        self.role = Role::Candidate;
        self.current_term += 1;
        self.voted_for = Some(self.id);
        self.votes.clear();
        self.votes.insert(self.id);
        self.reset_election_timer();
        if self.votes.len() >= self.majority() {
            // Single-node cluster: win immediately.
            return self.become_leader();
        }
        let msg = Message::RequestVote {
            term: self.current_term,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        self.broadcast(msg)
    }

    fn become_leader(&mut self) -> Vec<Envelope> {
        self.role = Role::Leader;
        self.next_index.clear();
        self.match_index.clear();
        let next = self.last_log_index() + 1;
        for &p in &self.peers {
            self.next_index.insert(p, next);
            self.match_index.insert(p, 0);
        }
        self.ticks_since_reset = 0;
        // Immediate heartbeat to assert leadership.
        self.append_entries_to_all()
    }

    fn broadcast(&self, message: Message) -> Vec<Envelope> {
        self.peers
            .iter()
            .map(|&to| Envelope {
                from: self.id,
                to,
                message: message.clone(),
            })
            .collect()
    }

    fn append_entries_to(&self, to: NodeId) -> Envelope {
        let next = *self.next_index.get(&to).unwrap_or(&1);
        if next <= self.snapshot_index {
            // The entries the follower needs were compacted: ship the
            // snapshot instead (§7).
            if let Some(snapshot) = &self.snapshot {
                return Envelope {
                    from: self.id,
                    to,
                    message: Message::InstallSnapshot {
                        term: self.current_term,
                        snapshot: snapshot.clone(),
                    },
                };
            }
        }
        let prev_log_index = next.max(self.snapshot_index + 1) - 1;
        let prev_log_term = self.term_at(prev_log_index);
        let entries: Vec<LogEntry> = self
            .log
            .iter()
            .skip((prev_log_index - self.snapshot_index) as usize)
            .cloned()
            .collect();
        Envelope {
            from: self.id,
            to,
            message: Message::AppendEntries {
                term: self.current_term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: self.commit_index,
            },
        }
    }

    fn append_entries_to_all(&self) -> Vec<Envelope> {
        self.peers
            .iter()
            .map(|&p| self.append_entries_to(p))
            .collect()
    }

    /// Advances one logical tick; returns messages to send.
    pub fn tick(&mut self) -> Vec<Envelope> {
        self.ticks_since_reset += 1;
        match self.role {
            Role::Leader => {
                if self.ticks_since_reset >= self.config.heartbeat_interval {
                    self.ticks_since_reset = 0;
                    self.append_entries_to_all()
                } else {
                    Vec::new()
                }
            }
            Role::Follower | Role::Candidate => {
                if self.ticks_since_reset >= self.election_deadline {
                    if self.config.pre_vote && self.role == Role::Follower {
                        self.start_pre_vote()
                    } else {
                        self.become_candidate()
                    }
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Appends a command to the leader's log. The command bytes are
    /// `Arc`-shared from here on: replication to followers and the
    /// committed stream reuse this allocation.
    ///
    /// # Errors
    ///
    /// [`NotLeader`] when this node is not the current leader; the caller
    /// should retry against the leader.
    pub fn propose(&mut self, command: impl Into<std::sync::Arc<[u8]>>) -> Result<u64, NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader);
        }
        let index = self.last_log_index() + 1;
        self.log.push(LogEntry {
            term: self.current_term,
            index,
            command: command.into(),
        });
        // Single-node cluster commits immediately.
        self.advance_commit_index();
        Ok(index)
    }

    /// Handles one inbound message; returns messages to send.
    pub fn receive(&mut self, from: NodeId, message: Message) -> Vec<Envelope> {
        match message {
            Message::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, last_log_index, last_log_term),
            Message::RequestVoteResponse { term, granted } => {
                self.on_vote_response(from, term, granted)
            }
            Message::AppendEntries {
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => self.on_append_entries(
                from,
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            ),
            Message::AppendEntriesResponse {
                term,
                success,
                match_index,
            } => self.on_append_response(from, term, success, match_index),
            Message::PreVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_pre_vote(from, term, last_log_index, last_log_term),
            Message::PreVoteResponse { term, granted } => {
                self.on_pre_vote_response(from, term, granted)
            }
            Message::InstallSnapshot { term, snapshot } => {
                self.on_install_snapshot(from, term, snapshot)
            }
            Message::InstallSnapshotResponse {
                term,
                last_included_index,
            } => self.on_install_snapshot_response(from, term, last_included_index),
        }
    }

    fn start_pre_vote(&mut self) -> Vec<Envelope> {
        self.reset_election_timer();
        self.pre_votes.clear();
        self.pre_votes.insert(self.id);
        if self.pre_votes.len() >= self.majority() {
            return self.become_candidate();
        }
        let msg = Message::PreVote {
            term: self.current_term + 1,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        self.broadcast(msg)
    }

    fn on_pre_vote(
        &mut self,
        from: NodeId,
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
    ) -> Vec<Envelope> {
        // Grant without changing any durable state: terms and votes are
        // untouched, which is the whole point of PreVote.
        let up_to_date = last_log_term > self.last_log_term()
            || (last_log_term == self.last_log_term() && last_log_index >= self.last_log_index());
        let granted = term > self.current_term && up_to_date;
        vec![Envelope {
            from: self.id,
            to: from,
            message: Message::PreVoteResponse {
                term: self.current_term,
                granted,
            },
        }]
    }

    fn on_pre_vote_response(&mut self, from: NodeId, term: u64, granted: bool) -> Vec<Envelope> {
        if term > self.current_term {
            self.become_follower(term);
            return Vec::new();
        }
        if self.role != Role::Follower || !granted {
            return Vec::new();
        }
        self.pre_votes.insert(from);
        if self.pre_votes.len() >= self.majority() {
            self.pre_votes.clear();
            return self.become_candidate();
        }
        Vec::new()
    }

    fn on_install_snapshot(
        &mut self,
        from: NodeId,
        term: u64,
        snapshot: Snapshot,
    ) -> Vec<Envelope> {
        if term > self.current_term || (term == self.current_term && self.role == Role::Candidate) {
            self.become_follower(term);
        }
        if term < self.current_term {
            return vec![Envelope {
                from: self.id,
                to: from,
                message: Message::InstallSnapshotResponse {
                    term: self.current_term,
                    last_included_index: 0,
                },
            }];
        }
        self.reset_election_timer();
        let last_included_index = snapshot.last_included_index;
        if last_included_index > self.snapshot_index {
            if last_included_index >= self.last_log_index() {
                // Snapshot supersedes the entire log.
                self.log.clear();
            } else {
                // Keep the suffix past the snapshot.
                let keep_from = (last_included_index - self.snapshot_index) as usize;
                self.log.drain(..keep_from);
            }
            self.snapshot_index = last_included_index;
            self.snapshot_term = snapshot.last_included_term;
            self.commit_index = self.commit_index.max(last_included_index);
            self.last_applied = self.last_applied.max(last_included_index);
            self.snapshot = Some(snapshot.clone());
            self.pending_installed = Some(snapshot);
        }
        vec![Envelope {
            from: self.id,
            to: from,
            message: Message::InstallSnapshotResponse {
                term: self.current_term,
                last_included_index: self.snapshot_index,
            },
        }]
    }

    fn on_install_snapshot_response(
        &mut self,
        from: NodeId,
        term: u64,
        last_included_index: u64,
    ) -> Vec<Envelope> {
        if term > self.current_term {
            self.become_follower(term);
            return Vec::new();
        }
        if self.role != Role::Leader {
            return Vec::new();
        }
        if last_included_index > 0 {
            self.match_index.insert(from, last_included_index);
            self.next_index.insert(from, last_included_index + 1);
        }
        Vec::new()
    }

    /// Compacts the log through `last_applied`, storing `data` as the
    /// application snapshot. Returns the number of discarded entries.
    /// No-op when nothing new is applied.
    pub fn take_snapshot(&mut self, data: Vec<u8>) -> usize {
        if self.last_applied <= self.snapshot_index {
            return 0;
        }
        let upto = self.last_applied;
        let discard = (upto - self.snapshot_index) as usize;
        let term = self.term_at(upto);
        self.log.drain(..discard);
        self.snapshot_index = upto;
        self.snapshot_term = term;
        self.snapshot = Some(Snapshot {
            last_included_index: upto,
            last_included_term: term,
            data,
        });
        discard
    }

    /// A snapshot installed from the leader since the last call, if any.
    /// The application must restore its state from it, because the
    /// individual commands it covers will never appear in
    /// [`RaftNode::take_committed`].
    pub fn take_installed_snapshot(&mut self) -> Option<Snapshot> {
        self.pending_installed.take()
    }

    /// Index of the last entry compacted into the local snapshot.
    pub fn snapshot_index(&self) -> u64 {
        self.snapshot_index
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
    ) -> Vec<Envelope> {
        if term > self.current_term {
            self.become_follower(term);
        }
        let up_to_date = last_log_term > self.last_log_term()
            || (last_log_term == self.last_log_term() && last_log_index >= self.last_log_index());
        let granted =
            term == self.current_term && up_to_date && self.voted_for.is_none_or(|v| v == from);
        if granted {
            self.voted_for = Some(from);
            self.reset_election_timer();
        }
        vec![Envelope {
            from: self.id,
            to: from,
            message: Message::RequestVoteResponse {
                term: self.current_term,
                granted,
            },
        }]
    }

    fn on_vote_response(&mut self, from: NodeId, term: u64, granted: bool) -> Vec<Envelope> {
        if term > self.current_term {
            self.become_follower(term);
            return Vec::new();
        }
        if self.role != Role::Candidate || term != self.current_term || !granted {
            return Vec::new();
        }
        self.votes.insert(from);
        if self.votes.len() >= self.majority() {
            return self.become_leader();
        }
        Vec::new()
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append_entries(
        &mut self,
        from: NodeId,
        term: u64,
        prev_log_index: u64,
        prev_log_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
    ) -> Vec<Envelope> {
        if term > self.current_term || (term == self.current_term && self.role == Role::Candidate) {
            self.become_follower(term);
        }
        let reply = |node: &Self, success: bool, match_index: u64| {
            vec![Envelope {
                from: node.id,
                to: from,
                message: Message::AppendEntriesResponse {
                    term: node.current_term,
                    success,
                    match_index,
                },
            }]
        };
        if term < self.current_term {
            return reply(self, false, 0);
        }
        // Valid leader for this term.
        self.reset_election_timer();
        // Log consistency check.
        if prev_log_index > self.last_log_index() || self.term_at(prev_log_index) != prev_log_term {
            // Hint: back off to our log length.
            return reply(
                self,
                false,
                self.last_log_index().min(prev_log_index.saturating_sub(1)),
            );
        }
        // Append, truncating conflicts (positions are snapshot-relative).
        for entry in entries {
            if entry.index <= self.snapshot_index {
                continue; // Already covered by the snapshot.
            }
            let pos = (entry.index - self.snapshot_index) as usize - 1;
            if pos < self.log.len() {
                if self.log[pos].term != entry.term {
                    self.log.truncate(pos);
                    self.log.push(entry);
                }
            } else {
                self.log.push(entry);
            }
        }
        if leader_commit > self.commit_index {
            self.commit_index = leader_commit.min(self.last_log_index());
        }
        let match_index = self.last_log_index();
        reply(self, true, match_index)
    }

    fn on_append_response(
        &mut self,
        from: NodeId,
        term: u64,
        success: bool,
        match_index: u64,
    ) -> Vec<Envelope> {
        if term > self.current_term {
            self.become_follower(term);
            return Vec::new();
        }
        if self.role != Role::Leader || term != self.current_term {
            return Vec::new();
        }
        if success {
            self.match_index.insert(from, match_index);
            self.next_index.insert(from, match_index + 1);
            self.advance_commit_index();
            Vec::new()
        } else {
            // Back off and retry immediately.
            let next = self.next_index.entry(from).or_insert(1);
            *next = (*next - 1).max(1).min(match_index + 1).max(1);
            vec![self.append_entries_to(from)]
        }
    }

    fn advance_commit_index(&mut self) {
        // Find the highest index replicated on a majority with an entry
        // from the current term (§5.4.2: only current-term entries commit
        // by counting).
        for idx in (self.commit_index + 1..=self.last_log_index()).rev() {
            if self.term_at(idx) != self.current_term {
                continue;
            }
            let replicas = 1 + self.match_index.values().filter(|&&m| m >= idx).count();
            if replicas >= self.majority() {
                self.commit_index = idx;
                break;
            }
        }
    }

    /// Drains commands committed since the last call, in log order.
    pub fn take_committed(&mut self) -> Vec<LogEntry> {
        let mut out = Vec::new();
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            if let Some(entry) = self.entry_at(self.last_applied) {
                out.push(entry.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_elects_itself_and_commits() {
        let mut n = RaftNode::new(1, vec![], RaftConfig::default(), 7);
        // Tick until the election fires.
        for _ in 0..25 {
            n.tick();
        }
        assert_eq!(n.role(), Role::Leader);
        n.propose(b"cmd".to_vec()).unwrap();
        assert_eq!(n.commit_index(), 1);
        let committed = n.take_committed();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].command.as_ref(), b"cmd");
        // Draining again yields nothing.
        assert!(n.take_committed().is_empty());
    }

    #[test]
    fn follower_rejects_propose() {
        let mut n = RaftNode::new(1, vec![2, 3], RaftConfig::default(), 7);
        assert_eq!(n.propose(b"x".to_vec()), Err(NotLeader));
    }

    #[test]
    fn vote_granted_once_per_term() {
        let mut n = RaftNode::new(1, vec![2, 3], RaftConfig::default(), 7);
        let out = n.receive(
            2,
            Message::RequestVote {
                term: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::RequestVoteResponse { granted: true, .. }
        ));
        // A different candidate in the same term is refused.
        let out = n.receive(
            3,
            Message::RequestVote {
                term: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::RequestVoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn stale_term_vote_rejected() {
        let mut n = RaftNode::new(1, vec![2, 3], RaftConfig::default(), 7);
        n.become_follower(5);
        let out = n.receive(
            2,
            Message::RequestVote {
                term: 3,
                last_log_index: 10,
                last_log_term: 3,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::RequestVoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn outdated_log_denied_vote() {
        let mut n = RaftNode::new(1, vec![2, 3], RaftConfig::default(), 7);
        n.log.push(LogEntry {
            term: 2,
            index: 1,
            command: Vec::new().into(),
        });
        n.current_term = 2;
        let out = n.receive(
            2,
            Message::RequestVote {
                term: 3,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::RequestVoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn append_entries_truncates_conflicts() {
        let mut n = RaftNode::new(1, vec![2], RaftConfig::default(), 7);
        n.become_follower(1);
        // Initial entries from leader term 1.
        n.receive(
            2,
            Message::AppendEntries {
                term: 1,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![
                    LogEntry {
                        term: 1,
                        index: 1,
                        command: b"a".to_vec().into(),
                    },
                    LogEntry {
                        term: 1,
                        index: 2,
                        command: b"b".to_vec().into(),
                    },
                ],
                leader_commit: 0,
            },
        );
        assert_eq!(n.log_len(), 2);
        // New leader at term 2 overwrites index 2.
        n.receive(
            2,
            Message::AppendEntries {
                term: 2,
                prev_log_index: 1,
                prev_log_term: 1,
                entries: vec![LogEntry {
                    term: 2,
                    index: 2,
                    command: b"c".to_vec().into(),
                }],
                leader_commit: 2,
            },
        );
        assert_eq!(n.log_len(), 2);
        assert_eq!(n.log()[1].command.as_ref(), b"c");
        assert_eq!(n.commit_index(), 2);
    }

    #[test]
    fn append_with_gap_fails_consistency_check() {
        let mut n = RaftNode::new(1, vec![2], RaftConfig::default(), 7);
        let out = n.receive(
            2,
            Message::AppendEntries {
                term: 1,
                prev_log_index: 5,
                prev_log_term: 1,
                entries: vec![],
                leader_commit: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::AppendEntriesResponse { success: false, .. }
        ));
    }
}
