//! A from-scratch Raft consensus implementation.
//!
//! Hyperledger Fabric's ordering service runs Raft (paper §II-A2); this
//! crate provides that substrate for the simulator. It implements leader
//! election, log replication and commit-index advancement from the Raft
//! paper ("In Search of an Understandable Consensus Algorithm", Ongaro &
//! Ousterhout, USENIX ATC 2014), in a deterministic tick-driven style:
//!
//! * [`RaftNode::tick`] advances timers (election timeout, heartbeats);
//! * [`RaftNode::receive`] processes one message;
//! * both return the messages to send, so any transport can carry them.
//!
//! [`Cluster`] is an in-memory transport with message-drop and partition
//! injection, used by the tests and by the ordering service when run in
//! simulation.
//!
//! # Examples
//!
//! ```
//! use fabric_raft::Cluster;
//!
//! let mut cluster = Cluster::new(3, 42);
//! let leader = cluster.run_until_leader(1000).expect("a leader is elected");
//! cluster.propose(leader, b"block-1".to_vec()).unwrap();
//! cluster.run_ticks(50);
//! // All nodes committed the entry (each command is `Arc`-shared with
//! // the bytes allocated at propose time, never deep-copied).
//! for node in cluster.node_ids() {
//!     let committed = cluster.committed(node);
//!     assert_eq!(committed.len(), 1);
//!     assert_eq!(committed[0].as_ref(), b"block-1");
//! }
//! ```

mod cluster;
mod message;
mod node;

pub use cluster::{Cluster, ClusterStats};
pub use message::{Envelope, LogEntry, Message, NodeId, Snapshot};
pub use node::{NotLeader, RaftConfig, RaftNode, Role};
