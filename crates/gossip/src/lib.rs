//! Private data dissemination for the Fabric PDC simulator.
//!
//! In Fabric, endorsers send the **plaintext** private rwsets to collection
//! member peers over the gossip layer (paper Fig. 2, steps 7–9), because
//! the transaction itself only carries hashes. Member peers that were not
//! endorsers need the plaintext before they can commit; peers that missed
//! the push reconcile it later by pulling from other members
//! (anti-entropy).
//!
//! This crate models that layer deterministically:
//!
//! * [`GossipHub`] — the channel-wide router holding each peer's
//!   **transient store** (pre-commit private data keyed by transaction);
//! * [`GossipHub::push`] — endorsement-time dissemination with optional
//!   message loss injection;
//! * [`GossipHub::pull`] — anti-entropy reconciliation for peers that
//!   missed the push (e.g. due to injected loss).
//!
//! # Examples
//!
//! ```
//! use fabric_gossip::{GossipHub, PeerId};
//! use fabric_types::{CollectionPvtRwSet, KvRwSet, PvtDataPackage, TxId};
//!
//! let mut hub = GossipHub::new(0);
//! let endorser = PeerId::new("peer0.org1");
//! let member = PeerId::new("peer0.org2");
//! hub.register(endorser.clone());
//! hub.register(member.clone());
//!
//! let pkg = PvtDataPackage {
//!     tx_id: TxId::new("tx1"),
//!     namespaces: vec![],
//!     collections: vec![],
//! };
//! hub.store_local(&endorser, pkg.clone());
//! hub.push(&endorser, &[member.clone()], pkg);
//! assert!(hub.get(&member, &TxId::new("tx1")).is_some());
//! ```

use fabric_types::{PvtDataPackage, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Identifier of a peer on the gossip network, e.g. `"peer0.org1"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(String);

impl PeerId {
    /// Creates a peer identifier.
    pub fn new(s: impl Into<String>) -> Self {
        PeerId(s.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PeerId {
    fn from(s: &str) -> Self {
        PeerId(s.to_string())
    }
}

/// A record of one dissemination event, for tests and audits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipEvent {
    /// Sending peer.
    pub from: PeerId,
    /// Receiving peer.
    pub to: PeerId,
    /// Transaction whose private data was transferred.
    pub tx_id: TxId,
    /// Whether the message was delivered or dropped by fault injection.
    pub delivered: bool,
    /// Whether this was an anti-entropy pull rather than a push.
    pub pull: bool,
}

/// The channel-wide gossip router plus each peer's transient store.
///
/// Packages are held behind [`Arc`]: one endorsement's private data is
/// referenced by the endorser's own store, every pushed-to member, the
/// durable archive, and commit-time providers — sharing one allocation
/// instead of deep-copying the rwsets at each hop. `PvtDataPackage` is
/// immutable once disseminated, so sharing is safe.
#[derive(Debug)]
pub struct GossipHub {
    transient: BTreeMap<PeerId, HashMap<TxId, Arc<PvtDataPackage>>>,
    events: Vec<GossipEvent>,
    drop_rate: f64,
    rng: StdRng,
}

impl GossipHub {
    /// Creates a hub with a seeded RNG for reproducible loss injection.
    pub fn new(seed: u64) -> Self {
        GossipHub {
            transient: BTreeMap::new(),
            events: Vec::new(),
            drop_rate: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Registers a peer; unregistered peers cannot receive data.
    pub fn register(&mut self, peer: PeerId) {
        self.transient.entry(peer).or_default();
    }

    /// Sets the probability that a push message is dropped.
    pub fn set_drop_rate(&mut self, rate: f64) {
        self.drop_rate = rate;
    }

    /// Stores a package in the sender's own transient store (an endorser
    /// keeps the plaintext it produced). Accepts owned or already-shared
    /// packages.
    pub fn store_local(&mut self, peer: &PeerId, pkg: impl Into<Arc<PvtDataPackage>>) {
        let pkg = pkg.into();
        if let Some(store) = self.transient.get_mut(peer) {
            store.insert(pkg.tx_id.clone(), pkg);
        }
    }

    /// Pushes a private data package from an endorser to collection member
    /// peers. Returns the number of successful deliveries. Unregistered
    /// recipients and injected losses are recorded in the event log.
    /// Every delivery shares the same package allocation.
    pub fn push(
        &mut self,
        from: &PeerId,
        recipients: &[PeerId],
        pkg: impl Into<Arc<PvtDataPackage>>,
    ) -> usize {
        let pkg = pkg.into();
        let mut delivered = 0;
        for to in recipients {
            if to == from {
                continue;
            }
            let dropped = self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate);
            let exists = self.transient.contains_key(to);
            let ok = exists && !dropped;
            if ok {
                self.transient
                    .get_mut(to)
                    .expect("checked exists")
                    .insert(pkg.tx_id.clone(), Arc::clone(&pkg));
                delivered += 1;
            }
            self.events.push(GossipEvent {
                from: from.clone(),
                to: to.clone(),
                tx_id: pkg.tx_id.clone(),
                delivered: ok,
                pull: false,
            });
        }
        delivered
    }

    /// Reads a package from a peer's transient store.
    pub fn get(&self, peer: &PeerId, tx_id: &TxId) -> Option<&PvtDataPackage> {
        self.transient.get(peer)?.get(tx_id).map(|p| &**p)
    }

    /// Like [`GossipHub::get`], but hands out the shared reference —
    /// what commit-time providers forward without copying rwsets.
    pub fn get_shared(&self, peer: &PeerId, tx_id: &TxId) -> Option<Arc<PvtDataPackage>> {
        self.transient.get(peer)?.get(tx_id).cloned()
    }

    /// Anti-entropy pull: `requester` asks each candidate in turn for the
    /// private data of `tx_id`; the first hit is copied into the
    /// requester's transient store and returned. Pulls are reliable (they
    /// model retried point-to-point requests, not one-shot gossip pushes).
    pub fn pull(
        &mut self,
        requester: &PeerId,
        tx_id: &TxId,
        candidates: &[PeerId],
    ) -> Option<Arc<PvtDataPackage>> {
        if let Some(existing) = self.get_shared(requester, tx_id) {
            return Some(existing);
        }
        for c in candidates {
            if c == requester {
                continue;
            }
            let found = self
                .transient
                .get(c)
                .and_then(|store| store.get(tx_id))
                .cloned();
            if let Some(pkg) = found {
                self.events.push(GossipEvent {
                    from: c.clone(),
                    to: requester.clone(),
                    tx_id: tx_id.clone(),
                    delivered: true,
                    pull: true,
                });
                if let Some(store) = self.transient.get_mut(requester) {
                    store.insert(tx_id.clone(), Arc::clone(&pkg));
                }
                return Some(pkg);
            }
        }
        None
    }

    /// Drops a committed transaction's package from a peer's transient
    /// store (Fabric purges the transient store after commit).
    pub fn purge(&mut self, peer: &PeerId, tx_id: &TxId) {
        if let Some(store) = self.transient.get_mut(peer) {
            store.remove(tx_id);
        }
    }

    /// Batched post-commit purge: removes every listed transaction from
    /// **every** registered peer's transient store in one pass over the
    /// stores, instead of one peer-map lookup per (peer, transaction)
    /// pair as repeated [`GossipHub::purge`] calls would cost.
    pub fn purge_committed<'a>(&mut self, tx_ids: impl IntoIterator<Item = &'a TxId> + Clone) {
        for store in self.transient.values_mut() {
            if store.is_empty() {
                continue;
            }
            for tx_id in tx_ids.clone() {
                store.remove(tx_id);
            }
        }
    }

    /// The dissemination event log.
    pub fn events(&self) -> &[GossipEvent] {
        &self.events
    }

    /// Number of packages currently in a peer's transient store.
    pub fn transient_len(&self, peer: &PeerId) -> usize {
        self.transient.get(peer).map_or(0, HashMap::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{ChaincodeId, CollectionName, CollectionPvtRwSet, KvRwSet, KvWrite};

    fn pkg(tx: &str) -> PvtDataPackage {
        PvtDataPackage {
            tx_id: TxId::new(tx),
            namespaces: vec![ChaincodeId::new("cc")],
            collections: vec![CollectionPvtRwSet {
                collection: CollectionName::new("PDC1"),
                rwset: KvRwSet {
                    reads: vec![],
                    writes: vec![KvWrite {
                        key: "k".into(),
                        value: Some(b"v".to_vec()),
                        is_delete: false,
                    }],
                },
            }],
        }
    }

    fn hub_with_peers(seed: u64, peers: &[&str]) -> GossipHub {
        let mut hub = GossipHub::new(seed);
        for p in peers {
            hub.register(PeerId::new(*p));
        }
        hub
    }

    #[test]
    fn push_reaches_recipients_only() {
        let mut hub = hub_with_peers(0, &["e", "m1", "m2", "outsider"]);
        let delivered = hub.push(
            &PeerId::new("e"),
            &[PeerId::new("m1"), PeerId::new("m2")],
            pkg("tx1"),
        );
        assert_eq!(delivered, 2);
        assert!(hub.get(&PeerId::new("m1"), &TxId::new("tx1")).is_some());
        assert!(hub.get(&PeerId::new("m2"), &TxId::new("tx1")).is_some());
        assert!(hub
            .get(&PeerId::new("outsider"), &TxId::new("tx1"))
            .is_none());
        assert!(hub.get(&PeerId::new("e"), &TxId::new("tx1")).is_none());
    }

    #[test]
    fn push_skips_self_and_unregistered() {
        let mut hub = hub_with_peers(0, &["e", "m1"]);
        let delivered = hub.push(
            &PeerId::new("e"),
            &[PeerId::new("e"), PeerId::new("ghost"), PeerId::new("m1")],
            pkg("tx1"),
        );
        assert_eq!(delivered, 1);
        let failures: Vec<_> = hub.events().iter().filter(|e| !e.delivered).collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].to, PeerId::new("ghost"));
    }

    #[test]
    fn loss_injection_then_pull_reconciles() {
        let mut hub = hub_with_peers(7, &["e", "m1", "m2"]);
        hub.store_local(&PeerId::new("e"), pkg("tx1"));
        hub.set_drop_rate(1.0);
        let delivered = hub.push(&PeerId::new("e"), &[PeerId::new("m1")], pkg("tx1"));
        assert_eq!(delivered, 0);
        assert!(hub.get(&PeerId::new("m1"), &TxId::new("tx1")).is_none());

        // Anti-entropy: m1 pulls from other members; e still has it.
        hub.set_drop_rate(0.0);
        let got = hub
            .pull(
                &PeerId::new("m1"),
                &TxId::new("tx1"),
                &[PeerId::new("m2"), PeerId::new("e")],
            )
            .expect("reconciled");
        assert_eq!(*got, pkg("tx1"));
        assert!(hub.get(&PeerId::new("m1"), &TxId::new("tx1")).is_some());
        assert!(hub.events().iter().any(|e| e.pull && e.delivered));
    }

    #[test]
    fn pull_returns_local_copy_without_network() {
        let mut hub = hub_with_peers(0, &["m1"]);
        hub.store_local(&PeerId::new("m1"), pkg("tx1"));
        let events_before = hub.events().len();
        let got = hub.pull(&PeerId::new("m1"), &TxId::new("tx1"), &[]);
        assert!(got.is_some());
        assert_eq!(hub.events().len(), events_before);
    }

    #[test]
    fn pull_fails_when_nobody_has_it() {
        let mut hub = hub_with_peers(0, &["m1", "m2"]);
        assert!(hub
            .pull(&PeerId::new("m1"), &TxId::new("tx9"), &[PeerId::new("m2")])
            .is_none());
    }

    #[test]
    fn purge_empties_transient_store() {
        let mut hub = hub_with_peers(0, &["m1"]);
        hub.store_local(&PeerId::new("m1"), pkg("tx1"));
        assert_eq!(hub.transient_len(&PeerId::new("m1")), 1);
        hub.purge(&PeerId::new("m1"), &TxId::new("tx1"));
        assert_eq!(hub.transient_len(&PeerId::new("m1")), 0);
    }

    #[test]
    fn push_shares_one_allocation_across_recipients() {
        let mut hub = hub_with_peers(0, &["e", "m1", "m2"]);
        let shared = Arc::new(pkg("tx1"));
        hub.store_local(&PeerId::new("e"), Arc::clone(&shared));
        hub.push(
            &PeerId::new("e"),
            &[PeerId::new("m1"), PeerId::new("m2")],
            Arc::clone(&shared),
        );
        for p in ["e", "m1", "m2"] {
            let got = hub
                .get_shared(&PeerId::new(p), &TxId::new("tx1"))
                .expect("stored");
            assert!(Arc::ptr_eq(&got, &shared), "{p} holds the shared package");
        }
    }

    #[test]
    fn purge_committed_clears_all_stores_at_once() {
        let mut hub = hub_with_peers(0, &["e", "m1", "m2"]);
        for p in ["e", "m1"] {
            hub.store_local(&PeerId::new(p), pkg("tx1"));
            hub.store_local(&PeerId::new(p), pkg("tx2"));
        }
        hub.store_local(&PeerId::new("m2"), pkg("tx3"));
        let committed = [TxId::new("tx1"), TxId::new("tx2")];
        hub.purge_committed(committed.iter());
        assert_eq!(hub.transient_len(&PeerId::new("e")), 0);
        assert_eq!(hub.transient_len(&PeerId::new("m1")), 0);
        // Uncommitted packages survive the batch purge.
        assert_eq!(hub.transient_len(&PeerId::new("m2")), 1);
    }
}
