//! Regenerates the paper's Table II: the attack & defense evaluation
//! summary.

use crate::lab::{build_lab, run_attack, AttackKind, ChaincodePolicy, LabConfig};
use crate::leakage::{run_read_leakage_scenario, run_write_leakage_scenario};
use fabric_types::DefenseConfig;

/// One cell of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Cell {
    /// Column label.
    pub config: String,
    /// `Some(true)` = attack works (✓), `Some(false)` = attack fails (×),
    /// `None` = not applicable (the paper's N/A).
    pub works: Option<bool>,
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Attack family ("Fake PDC Results Injection" / "PDC Leakage").
    pub family: &'static str,
    /// Row label (transaction type or leakage direction).
    pub label: String,
    /// The cells in column order.
    pub cells: Vec<Table2Cell>,
}

const INJECTION_COLUMNS: [&str; 4] = [
    "Default Policy: MAJORITY",
    "Default Policy: 2OutOf5",
    "Collection-level Policy: AND(org1,org2)",
    "New Feature 1: Collection-level Policy Check for PDC Read",
];

const LEAKAGE_COLUMNS: [&str; 2] = [
    "Original Fabric Framework",
    "New Feature 2: Cryptographic Solution",
];

fn injection_configs(seed: u64) -> [LabConfig; 4] {
    let and_policy = "AND('Org1MSP.peer','Org2MSP.peer')".to_string();
    [
        // Column 1: default MAJORITY, no collection policy.
        LabConfig {
            seed,
            ..LabConfig::default()
        },
        // Column 2: five orgs, 2OutOf5, attackers are two non-members.
        LabConfig {
            org_count: 5,
            chaincode_policy: ChaincodePolicy::NOutOf(2),
            seed: seed ^ 1,
            ..LabConfig::default()
        },
        // Column 3: collection-level AND(org1,org2), original validation.
        LabConfig {
            collection_policy: Some(and_policy.clone()),
            seed: seed ^ 2,
            ..LabConfig::default()
        },
        // Column 4: New Feature 1 on top of the collection-level policy.
        LabConfig {
            collection_policy: Some(and_policy),
            defense: DefenseConfig::feature1(),
            seed: seed ^ 3,
            ..LabConfig::default()
        },
    ]
}

/// Runs every attack × configuration combination and returns the table.
///
/// Each cell runs on a freshly built prototype network, exactly like the
/// paper's per-experiment Docker networks.
pub fn run_table2(seed: u64) -> Vec<Table2Row> {
    let configs = injection_configs(seed);
    let mut rows = Vec::new();

    for kind in AttackKind::all() {
        let mut cells = Vec::new();
        for (col, cfg) in INJECTION_COLUMNS.iter().zip(configs.iter()) {
            let mut lab = build_lab(cfg);
            let outcome = run_attack(&mut lab, kind);
            cells.push(Table2Cell {
                config: (*col).to_string(),
                works: Some(outcome.succeeded),
            });
        }
        for col in LEAKAGE_COLUMNS {
            cells.push(Table2Cell {
                config: col.to_string(),
                works: None,
            });
        }
        rows.push(Table2Row {
            family: "Fake PDC Results Injection",
            label: kind.label().to_string(),
            cells,
        });
    }

    type LeakRun = Box<dyn Fn(DefenseConfig, u64) -> bool>;
    let leak_runs: [(&str, LeakRun); 2] = [
        (
            "PDC-Read",
            Box::new(|d, s| run_read_leakage_scenario(d, s).leaked),
        ),
        (
            "PDC-Write",
            Box::new(|d, s| run_write_leakage_scenario(d, s).leaked),
        ),
    ];
    for (label, run) in leak_runs {
        let mut cells: Vec<Table2Cell> = INJECTION_COLUMNS
            .iter()
            .map(|c| Table2Cell {
                config: (*c).to_string(),
                works: None,
            })
            .collect();
        cells.push(Table2Cell {
            config: LEAKAGE_COLUMNS[0].to_string(),
            works: Some(run(DefenseConfig::original(), seed ^ 0x10)),
        });
        cells.push(Table2Cell {
            config: LEAKAGE_COLUMNS[1].to_string(),
            works: Some(run(DefenseConfig::feature2(), seed ^ 0x11)),
        });
        rows.push(Table2Row {
            family: "PDC Leakage",
            label: label.to_string(),
            cells,
        });
    }
    rows
}

/// The supplemental-defense matrix (beyond the paper's Table II): every
/// injection attack against the non-member endorsement filter alone —
/// no collection-level policy needed. Returns `(attack label, works)`.
pub fn run_supplemental_filter_matrix(seed: u64) -> Vec<(String, bool)> {
    let cfg = LabConfig {
        defense: DefenseConfig {
            filter_non_member_endorsers: true,
            ..DefenseConfig::original()
        },
        seed,
        ..LabConfig::default()
    };
    AttackKind::all()
        .into_iter()
        .map(|kind| {
            let mut lab = build_lab(&cfg);
            let outcome = run_attack(&mut lab, kind);
            (kind.label().to_string(), outcome.succeeded)
        })
        .collect()
}

/// Renders the table in the paper's ✓/×/N-A notation.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "TABLE II — ATTACK & DEFENSE EVALUATION SUMMARY (✓ attack works, × attack fails)\n\n",
    );
    let header: Vec<String> = INJECTION_COLUMNS
        .iter()
        .chain(LEAKAGE_COLUMNS.iter())
        .map(|s| s.to_string())
        .collect();
    out.push_str(&format!("{:<28} | {:<14} |", "Attack", "Tx Type"));
    for h in &header {
        out.push_str(&format!(" {:^12} |", truncate(h, 12)));
    }
    out.push('\n');
    out.push_str(&"-".repeat(28 + 17 + header.len() * 15));
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<28} | {:<14} |", row.family, row.label));
        for cell in &row.cells {
            let mark = match cell.works {
                Some(true) => "\u{2713}",
                Some(false) => "\u{00d7}",
                None => "N/A",
            };
            out.push_str(&format!(" {mark:^12} |"));
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Table II reproduction — the paper's headline result.
    /// Expected pattern (Table II):
    ///
    /// | attack      | MAJORITY | 2OutOf5 | AND(org1,org2) | Feature 1 |
    /// |-------------|----------|---------|----------------|-----------|
    /// | read-only   | ✓        | ✓       | ✓              | ×         |
    /// | write-only  | ✓        | ✓       | ×              | ×         |
    /// | read-write  | ✓        | ✓       | ×              | ×         |
    /// | delete      | ✓        | ✓       | ×              | ×         |
    /// | leak-read   | ✓ (orig) | × (feature 2)                        |
    /// | leak-write  | ✓ (orig) | × (feature 2)                        |
    #[test]
    fn table2_matches_paper() {
        let rows = run_table2(7);
        assert_eq!(rows.len(), 6);

        let works = |row: &Table2Row, col: usize| row.cells[col].works;

        // Injection rows: columns 0 and 1 all succeed.
        for row in &rows[..4] {
            assert_eq!(works(row, 0), Some(true), "{} vs MAJORITY", row.label);
            assert_eq!(works(row, 1), Some(true), "{} vs 2OutOf5", row.label);
        }
        // Column 2 (collection-level AND): read still works, the rest fail.
        assert_eq!(works(&rows[0], 2), Some(true), "read vs AND");
        for row in &rows[1..4] {
            assert_eq!(works(row, 2), Some(false), "{} vs AND", row.label);
        }
        // Column 3 (Feature 1): everything fails.
        for row in &rows[..4] {
            assert_eq!(works(row, 3), Some(false), "{} vs feature1", row.label);
        }
        // Leakage rows: original leaks, feature 2 does not.
        for row in &rows[4..] {
            assert_eq!(works(row, 4), Some(true), "{} original", row.label);
            assert_eq!(works(row, 5), Some(false), "{} feature2", row.label);
        }

        let rendered = render_table2(&rows);
        assert!(rendered.contains("TABLE II"));
        assert!(rendered.contains("Read-Only"));
    }
}
