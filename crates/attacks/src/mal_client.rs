//! A malicious client: assembles transactions without the honest SDK's
//! consistency checking and chooses endorsers adversarially.

use fabric_crypto::Keypair;
use fabric_types::{
    ChaincodeId, ChannelId, Endorsement, Identity, OrgId, Proposal, ProposalResponse, Role,
    Transaction,
};
use std::collections::BTreeMap;

/// A client under attacker control. Unlike
/// [`fabric_client::Client`], it performs **no** response-consistency or
/// signature verification — it simply packages whatever endorsements it
/// gathered. The protocol cannot force a client to behave: only the
/// validation phase at peers stands between this transaction and the
/// ledger.
#[derive(Debug, Clone)]
pub struct MaliciousClient {
    identity: Identity,
    keypair: Keypair,
    nonce: u64,
}

impl MaliciousClient {
    /// Creates a malicious client for `org`.
    pub fn new(org: impl Into<OrgId>, keypair: Keypair) -> Self {
        let identity = Identity::new(org, Role::Client, keypair.public_key());
        MaliciousClient {
            identity,
            keypair,
            nonce: 0,
        }
    }

    /// The client's (legitimately enrolled) identity.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Builds a proposal with a fresh nonce.
    pub fn create_proposal(
        &mut self,
        channel: impl Into<ChannelId>,
        chaincode: impl Into<ChaincodeId>,
        function: impl Into<String>,
        args: Vec<Vec<u8>>,
        transient: BTreeMap<String, Vec<u8>>,
    ) -> Proposal {
        self.nonce += 1;
        Proposal::new(
            channel,
            chaincode,
            function,
            args,
            transient,
            self.identity.clone(),
            self.nonce,
        )
    }

    /// Assembles a transaction from the first response's payload and every
    /// collected endorsement, with no consistency checks whatsoever.
    ///
    /// Returns `None` only when no responses were collected.
    pub fn assemble_unchecked(
        &self,
        proposal: &Proposal,
        responses: &[ProposalResponse],
    ) -> Option<Transaction> {
        let first = responses.first()?;
        let payload = first.payload.clone();
        let endorsements: Vec<Endorsement> =
            responses.iter().map(|r| r.endorsement.clone()).collect();
        let client_signature = self.keypair.sign(&Transaction::client_signed_bytes(
            &proposal.tx_id,
            &payload,
            &endorsements,
        ));
        Some(Transaction {
            tx_id: proposal.tx_id.clone(),
            channel: proposal.channel.clone(),
            chaincode: proposal.chaincode.clone(),
            creator: self.identity.clone(),
            payload,
            commitment: first.commitment,
            endorsements,
            client_signature,
            memo: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::sha256;
    use fabric_types::{PayloadCommitment, ProposalResponsePayload, Response, TxRwSet};

    #[test]
    fn assembles_despite_inconsistent_responses() {
        let mut mc = MaliciousClient::new("Org1MSP", Keypair::generate_from_seed(70));
        let proposal = mc.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());

        let make_response = |payload: &[u8], seed: u64| {
            let kp = Keypair::generate_from_seed(seed);
            let id = Identity::new("Org1MSP", Role::Peer, kp.public_key());
            let p = ProposalResponsePayload {
                proposal_hash: sha256(b"x"),
                response: Response::ok(payload.to_vec()),
                results: TxRwSet::new(),
                event: None,
            };
            let sig = kp.sign(&p.signed_bytes(PayloadCommitment::Plain));
            ProposalResponse {
                payload: p,
                commitment: PayloadCommitment::Plain,
                endorsement: Endorsement {
                    endorser: id,
                    signature: sig,
                },
            }
        };

        // An honest client would abort on the mismatch; the malicious one
        // doesn't care.
        let responses = vec![make_response(b"a", 71), make_response(b"b", 72)];
        let tx = mc.assemble_unchecked(&proposal, &responses).unwrap();
        assert_eq!(tx.payload.response.payload, b"a");
        assert_eq!(tx.endorsements.len(), 2);
        assert!(tx.verify_client_signature());
        // Of course, the mismatched second endorsement cannot verify.
        assert!(!tx.verify_endorsement_signatures());
    }

    #[test]
    fn empty_responses_yield_none() {
        let mut mc = MaliciousClient::new("Org1MSP", Keypair::generate_from_seed(73));
        let proposal = mc.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        assert!(mc.assemble_unchecked(&proposal, &[]).is_none());
    }
}
