//! The colluding chaincode variant malicious organizations install.
//!
//! Fabric's customizable-chaincode feature only requires that endorsers
//! return *equal results*; it cannot tell whether those results were
//! computed honestly. Colluding organizations exploit this (§IV-A1):
//! their variant obtains the genuine `(key, version)` read-set entry via
//! `GetPrivateDataHash` — which works at **every** peer — and substitutes
//! an agreed-upon fake value wherever the honest chaincode would use the
//! real private value.

use fabric_chaincode::{Chaincode, ChaincodeError, ChaincodeStub};
use fabric_types::CollectionName;

/// The malicious counterpart of
/// [`GuardedPdc`](fabric_chaincode::samples::GuardedPdc). All colluders
/// configure the same `fake_read_value`, so their proposal responses agree
/// byte-for-byte and pass the client-side consistency check.
#[derive(Debug, Clone)]
pub struct ColludingGuardedPdc {
    collection: CollectionName,
    /// The value the colluders pretend the private key holds.
    fake_read_value: i64,
}

impl ColludingGuardedPdc {
    /// Creates the colluding variant with the agreed fake value.
    pub fn new(collection: impl Into<CollectionName>, fake_read_value: i64) -> Self {
        ColludingGuardedPdc {
            collection: collection.into(),
            fake_read_value,
        }
    }

    /// The agreed fake value.
    pub fn fake_read_value(&self) -> i64 {
        self.fake_read_value
    }

    /// Forges the read-set entry: `GetPrivateDataHash` records the same
    /// `(key, version)` a member's `GetPrivateData` would, without needing
    /// the plaintext.
    fn forge_read(&self, stub: &mut ChaincodeStub<'_>, key: &str) -> Result<(), ChaincodeError> {
        if stub.get_private_data_hash(&self.collection, key).is_none() {
            // Even forging needs an existing key (a correct version).
            return Err(ChaincodeError::KeyNotFound {
                collection: Some(self.collection.clone()),
                key: key.to_string(),
            });
        }
        Ok(())
    }
}

impl Chaincode for ColludingGuardedPdc {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            // Fake read result injection (§IV-A1): valid (key, version)
            // from the hash store + the agreed fake value in the payload.
            "read" => {
                let key = stub.arg_str(0)?;
                self.forge_read(stub, &key)?;
                Ok(self.fake_read_value.to_string().into_bytes())
            }
            // Fake write result injection (§IV-A2): no business-rule
            // constraints whatsoever.
            "write" => {
                let key = stub.arg_str(0)?;
                let value = stub
                    .args()
                    .get(1)
                    .cloned()
                    .ok_or_else(|| ChaincodeError::InvalidArguments("missing value".into()))?;
                stub.put_private_data(&self.collection, &key, value);
                Ok(Vec::new())
            }
            // Fake read-write injection (§IV-A3): the fake read value feeds
            // the update, steering the written result.
            "add" => {
                let key = stub.arg_str(0)?;
                let delta: i64 = stub
                    .arg_str(1)?
                    .parse()
                    .map_err(|_| ChaincodeError::InvalidArguments("bad delta".into()))?;
                self.forge_read(stub, &key)?;
                let sum = self.fake_read_value + delta;
                stub.put_private_data(&self.collection, &key, sum.to_string().into_bytes());
                Ok(sum.to_string().into_bytes())
            }
            // PDC delete attack (§IV-A4): a pure delete-only rwset, no
            // guard, no read.
            "delete" => {
                let key = stub.arg_str(0)?;
                stub.del_private_data(&self.collection, &key);
                Ok(Vec::new())
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_chaincode::ChaincodeDefinition;
    use fabric_crypto::Keypair;
    use fabric_ledger::WorldState;
    use fabric_types::{
        CollectionConfig, Identity, KvRead, OrgId, Proposal, Role, TxKind, Version,
    };
    use std::collections::{BTreeMap, HashSet};

    const COL: &str = "PDC1";

    /// A non-member peer's view: hashed entries only.
    fn non_member_state() -> WorldState {
        let mut ws = WorldState::new();
        ws.put_private_hash(
            &"guarded".into(),
            &CollectionName::new(COL),
            fabric_crypto::sha256(b"k1"),
            fabric_crypto::sha256(b"12"),
            Version::new(3, 0),
        );
        ws
    }

    fn run(
        function: &str,
        args: &[&str],
    ) -> (
        Result<Vec<u8>, ChaincodeError>,
        fabric_chaincode::SimulationResult,
    ) {
        let ws = non_member_state();
        let def = ChaincodeDefinition::new("guarded").with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")]),
        );
        // The malicious peer is org3: NOT a member.
        let memberships: HashSet<CollectionName> = HashSet::new();
        let kp = Keypair::generate_from_seed(666);
        let prop = Proposal::new(
            "ch1",
            "guarded",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
            Identity::new("Org3MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(&ws, &def, &memberships, &prop);
        let cc = ColludingGuardedPdc::new(COL, 99);
        let out = cc.invoke(&mut stub);
        (out, stub.into_results())
    }

    #[test]
    fn forged_read_has_genuine_version_and_fake_payload() {
        let (out, results) = run("read", &["k1"]);
        // The payload is the agreed fake value...
        assert_eq!(out.unwrap(), b"99");
        // ...while the read set matches what an honest member records.
        assert_eq!(
            results.collections[0].rwset.reads[0],
            KvRead {
                key: "k1".into(),
                version: Some(Version::new(3, 0)),
            }
        );
        assert_eq!(results.collections[0].rwset.kind(), TxKind::ReadOnly);
    }

    #[test]
    fn forged_read_of_missing_key_fails() {
        let (out, _) = run("read", &["ghost"]);
        assert!(matches!(out, Err(ChaincodeError::KeyNotFound { .. })));
    }

    #[test]
    fn unconstrained_write_and_pure_delete() {
        let (out, results) = run("write", &["k1", "5"]);
        assert!(out.is_ok());
        assert_eq!(results.collections[0].rwset.kind(), TxKind::WriteOnly);

        let (out, results) = run("delete", &["k1"]);
        assert!(out.is_ok());
        assert_eq!(results.collections[0].rwset.kind(), TxKind::DeleteOnly);
    }

    #[test]
    fn add_uses_fake_read_value() {
        let (out, results) = run("add", &["k1", "2"]);
        // 99 (fake) + 2 = 101 regardless of the genuine value 12.
        assert_eq!(out.unwrap(), b"101");
        assert_eq!(results.collections[0].rwset.kind(), TxKind::ReadWrite);
        assert_eq!(
            results.collections[0].rwset.writes[0].value,
            Some(b"101".to_vec())
        );
    }
}
