//! The paper's attacks: fake PDC results injection (§IV-A) and private
//! data leakage (§IV-B), plus the experiment harness that reproduces the
//! evaluation of §V-A/§V-B and Table II.
//!
//! The attack surface is exactly the three misuse cases:
//!
//! 1. PDC non-member peers can endorse PDC transactions (write-only needs
//!    no private state; reads are forged via `GetPrivateDataHash`);
//! 2. PDC transactions are validated with the chaincode-level endorsement
//!    policy (`MAJORITY Endorsement` by default), which does not
//!    distinguish members from non-members;
//! 3. the proposal-response `payload` rides through ordering in plaintext
//!    and lands in every peer's local blockchain.
//!
//! Nothing in this crate bypasses the simulator's integrity checks: the
//! attacks only use the public APIs a real malicious organization has —
//! installing customized chaincode on its own peers, choosing which peers
//! endorse, and reading its own copy of the ledger.

mod collusion;
mod lab;
mod leakage;
mod mal_client;
mod table2;

pub use collusion::ColludingGuardedPdc;
pub use lab::{
    build_lab, run_all, run_attack, AttackKind, AttackLab, AttackOutcome, ChaincodePolicy,
    LabConfig,
};
pub use leakage::{
    extract_payload_leaks, run_read_leakage_scenario, run_write_leakage_scenario, LeakScenario,
    LeakedRecord,
};
pub use mal_client::MaliciousClient;
pub use table2::{
    render_table2, run_supplemental_filter_matrix, run_table2, Table2Cell, Table2Row,
};
