//! The §V-A experiment harness: prototype networks and attack runners.

use crate::collusion::ColludingGuardedPdc;
use crate::mal_client::MaliciousClient;
use fabric_chaincode::samples::{Guard, GuardedPdc};
use fabric_chaincode::ChaincodeDefinition;
use fabric_crypto::Keypair;
use fabric_monitor::{AlertTransition, Monitor};
use fabric_network::{FabricNetwork, NetworkBuilder};
use fabric_telemetry::{AuditEvent, Telemetry};
use fabric_types::{
    ChaincodeId, CollectionConfig, CollectionName, DefenseConfig, OrgId, TxValidationCode,
};
use std::collections::BTreeMap;
use std::fmt;

/// The chaincode namespace used by the lab.
pub const LAB_CHAINCODE: &str = "guarded";
/// The private data collection shared by org1 and org2.
pub const LAB_COLLECTION: &str = "PDC1";
/// The genuine private value committed before any attack (satisfies both
/// org1's `< 15` and org2's `> 10`).
pub const GENUINE_VALUE: i64 = 12;
/// The value the colluders pretend the key holds (read forgery).
pub const FAKE_READ_VALUE: i64 = 3;
/// The value the fake write/read-write attacks inject (violates org2's
/// `> 10` rule).
pub const INJECTED_VALUE: i64 = 5;

/// Which chaincode-level endorsement policy the lab channel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaincodePolicy {
    /// The Fabric default, `MAJORITY Endorsement` (116 of 120 GitHub
    /// configs, §V-C2).
    MajorityEndorsement,
    /// `OutOf(n, <every org's peer>)` — the paper's §IV-A5/§V-A5 setting.
    NOutOf(u32),
}

impl ChaincodePolicy {
    /// Renders the policy expression for `org_count` organizations.
    pub fn expression(&self, org_count: usize) -> String {
        match self {
            ChaincodePolicy::MajorityEndorsement => "MAJORITY Endorsement".to_string(),
            ChaincodePolicy::NOutOf(n) => {
                let principals: Vec<String> = (1..=org_count)
                    .map(|i| format!("'Org{i}MSP.peer'"))
                    .collect();
                format!("OutOf({n},{})", principals.join(","))
            }
        }
    }
}

/// The four fake-PDC-results injection attacks of §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// §IV-A1 / §V-A1: fabricate a PDC read-only transaction.
    FakeRead,
    /// §IV-A2 / §V-A2: inject a write that violates the victim's rules.
    FakeWrite,
    /// §IV-A3 / §V-A3: forge the read half to steer a read-write update.
    FakeReadWrite,
    /// §IV-A4 / §V-A4: delete a private key against the victim's rules.
    FakeDelete,
}

impl AttackKind {
    /// All four injection attacks in paper order.
    pub fn all() -> [AttackKind; 4] {
        [
            AttackKind::FakeRead,
            AttackKind::FakeWrite,
            AttackKind::FakeReadWrite,
            AttackKind::FakeDelete,
        ]
    }

    /// The paper's row label (Table II).
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::FakeRead => "Read-Only",
            AttackKind::FakeWrite => "Write-Only",
            AttackKind::FakeReadWrite => "Read-Write",
            AttackKind::FakeDelete => "Delete-Related",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of one prototype system (§V-A).
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Number of organizations (3 for the base experiments, 5 for NOutOf).
    pub org_count: usize,
    /// Chaincode-level endorsement policy.
    pub chaincode_policy: ChaincodePolicy,
    /// Optional collection-level endorsement policy for the PDC.
    pub collection_policy: Option<String>,
    /// Defense configuration of peers and clients.
    pub defense: DefenseConfig,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            org_count: 3,
            chaincode_policy: ChaincodePolicy::MajorityEndorsement,
            collection_policy: None,
            defense: DefenseConfig::original(),
            seed: 42,
        }
    }
}

impl LabConfig {
    /// The peers the attacker controls: org1+org3 in the 3-org setting
    /// (org1 is a malicious *member*, org3 a malicious non-member);
    /// org3+org4 — both non-members — in the 5-org NOutOf setting (§V-A5).
    pub fn malicious_peers(&self) -> Vec<String> {
        if self.org_count >= 5 {
            vec!["peer0.org3".into(), "peer0.org4".into()]
        } else {
            vec!["peer0.org1".into(), "peer0.org3".into()]
        }
    }

    /// The organization whose client launches the attacks.
    pub fn attacker_org(&self) -> OrgId {
        if self.org_count >= 5 {
            OrgId::new("Org3MSP")
        } else {
            OrgId::new("Org1MSP")
        }
    }
}

/// A built prototype network plus its configuration.
#[derive(Debug)]
pub struct AttackLab {
    /// The running network, seeded with the genuine private value.
    pub net: FabricNetwork,
    /// The configuration it was built from.
    pub cfg: LabConfig,
    /// The attacker-controlled client (its nonce spans all attack runs on
    /// this lab, so fabricated transactions get distinct IDs).
    attacker: MaliciousClient,
}

/// The outcome of one attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Which attack ran.
    pub kind: AttackKind,
    /// The validation code the network assigned, when the transaction made
    /// it to a block.
    pub validation_code: Option<TxValidationCode>,
    /// Whether the attack achieved its goal (per the paper's criteria).
    pub succeeded: bool,
    /// Human-readable explanation.
    pub note: String,
    /// Security-audit events the network emitted while this attack ran
    /// (the lab attaches a shared [`Telemetry`] pipeline, so every attack
    /// leaves a forensic trail even when it succeeds).
    pub audit_events: Vec<AuditEvent>,
    /// Alert-state transitions the lab's [`Monitor`] logged while this
    /// attack ran — which detection rules fired (and resolved) on it.
    pub alerts: Vec<AlertTransition>,
}

/// Builds the §V-A prototype: `org_count` orgs, PDC1 = {org1, org2},
/// org-specific business guards (org1 `< 15`, org2 `> 10`, others
/// unconstrained), colluding chaincode on the malicious peers, and the
/// genuine value `k1 = 12` committed honestly.
///
/// # Panics
///
/// Panics if the honest seeding transaction fails — that would mean the
/// substrate itself is broken, which the integration tests guard against.
pub fn build_lab(cfg: &LabConfig) -> AttackLab {
    let org_names: Vec<String> = (1..=cfg.org_count).map(|i| format!("Org{i}MSP")).collect();
    let org_refs: Vec<&str> = org_names.iter().map(String::as_str).collect();
    let telemetry = Telemetry::with_flight_recorder(1024);
    let mut net = NetworkBuilder::new("mychannel")
        .orgs(&org_refs)
        .seed(cfg.seed)
        .defense(cfg.defense)
        .with_telemetry(telemetry.clone())
        .with_monitor(Monitor::new(&telemetry))
        .build();

    let mut collection = CollectionConfig::membership_of(
        LAB_COLLECTION,
        &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
    );
    if let Some(p) = &cfg.collection_policy {
        collection = collection.with_endorsement_policy(p.clone());
    }
    // MemberOnlyRead is off in the paper's prototypes: the read service is
    // offered to clients of any org (that is what gets audited on-chain).
    collection = collection.with_member_only_read(false);
    let definition = ChaincodeDefinition::new(LAB_CHAINCODE)
        .with_endorsement_policy(cfg.chaincode_policy.expression(cfg.org_count))
        .with_collection(collection);

    // Honest variants with each org's business rules.
    for i in 1..=cfg.org_count {
        let peer = format!("peer0.org{i}");
        let guard = match i {
            1 => (Guard::LessThan(15), Guard::LessThan(15)),
            2 => (Guard::GreaterThan(10), Guard::GreaterThan(10)),
            _ => (Guard::Always, Guard::Always),
        };
        net.install_custom_chaincode(
            &peer,
            definition.clone(),
            std::sync::Arc::new(GuardedPdc::new(LAB_COLLECTION, guard.0, guard.1)),
        );
    }
    // Colluding variants on the malicious peers. Malicious peers also do
    // not run the (voluntary) New-Feature-2 endorser path — they sign the
    // plaintext payload form like unpatched peers; validation-side flags
    // stay uniform so honest committers agree on validity.
    for peer in cfg.malicious_peers() {
        net.install_custom_chaincode(
            &peer,
            definition.clone(),
            std::sync::Arc::new(ColludingGuardedPdc::new(LAB_COLLECTION, FAKE_READ_VALUE)),
        );
    }

    // Seed the genuine value honestly: endorsed by both PDC members.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            LAB_CHAINCODE,
            "write",
            &["k1", &GENUINE_VALUE.to_string()],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .expect("seeding the genuine value must succeed");
    assert!(
        outcome.validation_code.is_valid(),
        "seed tx invalid: {}",
        outcome.validation_code
    );

    // Only now downgrade the malicious peers' endorser behaviour: they do
    // not run the (voluntary) New-Feature-2 signing path. Done after the
    // honest seeding so the honest client saw uniform commitments.
    for peer in cfg.malicious_peers() {
        net.peer_mut(&peer).set_defense(DefenseConfig {
            hashed_payload_commitment: false,
            ..cfg.defense
        });
    }

    // The default lab collection carries no collection-level policy, so
    // even the honest seeding legitimately trips the UC2 fallback audit.
    // Re-baseline the monitor: attacks are judged against a quiet network.
    if let Some(monitor) = net.monitor() {
        monitor.reset();
    }

    let attacker = MaliciousClient::new(
        cfg.attacker_org(),
        Keypair::generate_from_seed(cfg.seed ^ 0xbad0_c0de),
    );
    AttackLab {
        net,
        cfg: cfg.clone(),
        attacker,
    }
}

/// Runs one injection attack against a lab, per §V-A. The attacker's
/// client collects endorsements **only from the malicious peers**, bypasses
/// SDK checks, and submits for ordering; success is then judged against the
/// honest peers' ledgers.
pub fn run_attack(lab: &mut AttackLab, kind: AttackKind) -> AttackOutcome {
    let audit_before = lab
        .net
        .telemetry()
        .map(|t| t.audit().len())
        .unwrap_or_default();
    let alerts_before = lab
        .net
        .monitor()
        .map(|m| m.transitions().len())
        .unwrap_or_default();
    let mut outcome = run_attack_inner(lab, kind);
    if let Some(t) = lab.net.telemetry() {
        outcome.audit_events = t.audit().events_since(audit_before);
    }
    if let Some(m) = lab.net.monitor() {
        let transitions = m.transitions();
        outcome.alerts = transitions[alerts_before.min(transitions.len())..].to_vec();
    }
    outcome
}

fn run_attack_inner(lab: &mut AttackLab, kind: AttackKind) -> AttackOutcome {
    // §V-A4 precondition: the delete experiment runs with k1 = 5, planted
    // by a fake write when the policy admits one.
    if kind == AttackKind::FakeDelete {
        let _ = execute_injection(lab, "write", &["k1", &INJECTED_VALUE.to_string()]);
    }
    match kind {
        AttackKind::FakeRead => {
            let (code, payload) = match execute_injection(lab, "read", &["k1"]) {
                Ok(x) => x,
                Err(note) => return failed(kind, None, note),
            };
            let fake = FAKE_READ_VALUE.to_string().into_bytes();
            let succeeded = code.is_valid() && payload == fake;
            AttackOutcome {
                kind,
                validation_code: Some(code),
                succeeded,
                note: if succeeded {
                    format!(
                        "fabricated read committed as VALID: payload claims k1 = {FAKE_READ_VALUE} while the genuine value is {GENUINE_VALUE}"
                    )
                } else {
                    format!("transaction marked {code}")
                },
                audit_events: Vec::new(),
                alerts: Vec::new(),
            }
        }
        AttackKind::FakeWrite => {
            let (code, _) =
                match execute_injection(lab, "write", &["k1", &INJECTED_VALUE.to_string()]) {
                    Ok(x) => x,
                    Err(note) => return failed(kind, None, note),
                };
            judge_state_injection(lab, kind, code, INJECTED_VALUE)
        }
        AttackKind::FakeReadWrite => {
            // Colluders forge the read as FAKE_READ_VALUE (3); 3 + 2 = 5.
            let (code, _) = match execute_injection(lab, "add", &["k1", "2"]) {
                Ok(x) => x,
                Err(note) => return failed(kind, None, note),
            };
            judge_state_injection(lab, kind, code, FAKE_READ_VALUE + 2)
        }
        AttackKind::FakeDelete => {
            let (code, _) = match execute_injection(lab, "delete", &["k1"]) {
                Ok(x) => x,
                Err(note) => return failed(kind, None, note),
            };
            let ns = ChaincodeId::new(LAB_CHAINCODE);
            let col = CollectionName::new(LAB_COLLECTION);
            let victim = lab.net.peer("peer0.org2").world_state();
            let deleted_at_victim = victim.get_private(&ns, &col, "k1").is_none()
                && victim.get_private_hash(&ns, &col, "k1").is_none();
            let succeeded = code.is_valid() && deleted_at_victim;
            AttackOutcome {
                kind,
                validation_code: Some(code),
                succeeded,
                note: if succeeded {
                    "k1 deleted at the victim although its chaincode forbids it".to_string()
                } else {
                    format!("transaction marked {code}")
                },
                audit_events: Vec::new(),
                alerts: Vec::new(),
            }
        }
    }
}

/// Runs every injection attack on fresh labs built from `cfg`.
pub fn run_all(cfg: &LabConfig) -> Vec<AttackOutcome> {
    AttackKind::all()
        .into_iter()
        .map(|kind| {
            let mut lab = build_lab(cfg);
            run_attack(&mut lab, kind)
        })
        .collect()
}

fn failed(kind: AttackKind, code: Option<TxValidationCode>, note: String) -> AttackOutcome {
    AttackOutcome {
        kind,
        validation_code: code,
        succeeded: false,
        note,
        audit_events: Vec::new(),
        alerts: Vec::new(),
    }
}

/// Drives one malicious submission: proposal → colluding endorsements →
/// unchecked assembly → ordering → committed status. Returns the
/// validation code and the committed payload.
fn execute_injection(
    lab: &mut AttackLab,
    function: &str,
    args: &[&str],
) -> Result<(TxValidationCode, Vec<u8>), String> {
    let cfg = lab.cfg.clone();
    let proposal = lab.attacker.create_proposal(
        lab.net.channel().clone(),
        ChaincodeId::new(LAB_CHAINCODE),
        function,
        args.iter().map(|a| a.as_bytes().to_vec()).collect(),
        BTreeMap::new(),
    );
    let mut responses = Vec::new();
    for peer in cfg.malicious_peers() {
        match lab.net.endorse(&peer, &proposal) {
            Ok(r) => responses.push(r),
            Err(e) => return Err(format!("endorsement refused at {peer}: {e}")),
        }
    }
    let tx = lab
        .attacker
        .assemble_unchecked(&proposal, &responses)
        .ok_or_else(|| "no endorsements collected".to_string())?;
    let tx_id = tx.tx_id.clone();
    lab.net.submit(tx);
    for _ in 0..200 {
        lab.net.advance(1);
        if let Some(code) = lab.net.transaction_status(&tx_id) {
            let payload = lab
                .net
                .peer("peer0.org2")
                .block_store()
                .transaction(&tx_id)
                .map(|(t, _)| t.payload.response.payload.clone())
                .unwrap_or_default();
            return Ok((code, payload));
        }
    }
    Err("transaction never ordered".to_string())
}

/// Success for write-family attacks: the transaction committed as VALID
/// and the victim org2's world state now holds `expected`, violating its
/// `> 10` business rule.
fn judge_state_injection(
    lab: &AttackLab,
    kind: AttackKind,
    code: TxValidationCode,
    expected: i64,
) -> AttackOutcome {
    let ns = ChaincodeId::new(LAB_CHAINCODE);
    let col = CollectionName::new(LAB_COLLECTION);
    let at_victim = lab
        .net
        .peer("peer0.org2")
        .world_state()
        .get_private(&ns, &col, "k1")
        .map(|v| v.value.clone());
    let succeeded = code.is_valid() && at_victim == Some(expected.to_string().into_bytes());
    AttackOutcome {
        kind,
        validation_code: Some(code),
        succeeded,
        note: if succeeded {
            format!(
                "victim org2 now holds k1 = {expected}, violating its business rule (requires value > 10)"
            )
        } else {
            format!("transaction marked {code}; victim state: {at_victim:?}")
        },
        audit_events: Vec::new(),
        alerts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_expressions_render() {
        assert_eq!(
            ChaincodePolicy::MajorityEndorsement.expression(3),
            "MAJORITY Endorsement"
        );
        let e = ChaincodePolicy::NOutOf(2).expression(5);
        assert!(e.starts_with("OutOf(2,'Org1MSP.peer'"));
        assert!(e.contains("'Org5MSP.peer'"));
    }

    #[test]
    fn lab_builds_and_seeds_genuine_value() {
        let lab = build_lab(&LabConfig::default());
        let ns = ChaincodeId::new(LAB_CHAINCODE);
        let col = CollectionName::new(LAB_COLLECTION);
        assert_eq!(
            lab.net
                .peer("peer0.org2")
                .world_state()
                .get_private(&ns, &col, "k1")
                .unwrap()
                .value,
            b"12"
        );
        // The non-member org3 has only the hash.
        assert!(lab
            .net
            .peer("peer0.org3")
            .world_state()
            .get_private(&ns, &col, "k1")
            .is_none());
    }

    #[test]
    fn malicious_roles_depend_on_org_count() {
        let three = LabConfig::default();
        assert_eq!(three.malicious_peers(), vec!["peer0.org1", "peer0.org3"]);
        assert_eq!(three.attacker_org(), OrgId::new("Org1MSP"));
        let five = LabConfig {
            org_count: 5,
            chaincode_policy: ChaincodePolicy::NOutOf(2),
            ..LabConfig::default()
        };
        assert_eq!(five.malicious_peers(), vec!["peer0.org3", "peer0.org4"]);
        assert_eq!(five.attacker_org(), OrgId::new("Org3MSP"));
    }
}
