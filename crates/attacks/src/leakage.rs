//! PDC leakage extraction and the §V-B scenarios.
//!
//! No node misbehaves here: the leakage follows purely from Use Case 3 —
//! the chaincode response `payload` is embedded in the transaction in
//! plaintext, blocks go to every peer, and any peer can parse its local
//! blockchain.

use fabric_chaincode::samples::{PerfTest, SaccPrivate};
use fabric_chaincode::ChaincodeDefinition;
use fabric_network::{FabricNetwork, NetworkBuilder};
use fabric_peer::Peer;
use fabric_types::{CollectionConfig, DefenseConfig, OrgId, TxId};
use std::sync::Arc;

/// A payload recovered from a peer's local blockchain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakedRecord {
    /// The transaction the payload was read from.
    pub tx_id: TxId,
    /// The chaincode that produced it.
    pub chaincode: String,
    /// The (plaintext) payload bytes.
    pub payload: Vec<u8>,
}

/// Scans a peer's local blockchain for proposal-response payloads of valid
/// PDC transactions — exactly what a curious non-member peer does in
/// §IV-B. Returns every non-empty payload found.
pub fn extract_payload_leaks(peer: &Peer) -> Vec<LeakedRecord> {
    let mut out = Vec::new();
    for block in peer.block_store().iter() {
        for (tx, code) in block.validated_transactions() {
            if !code.is_valid() {
                continue;
            }
            if !tx.payload.results.touches_private_data() {
                continue;
            }
            if tx.payload.response.payload.is_empty() {
                continue;
            }
            out.push(LeakedRecord {
                tx_id: tx.tx_id.clone(),
                chaincode: tx.chaincode.to_string(),
                payload: tx.payload.response.payload.clone(),
            });
        }
    }
    out
}

/// The outcome of a leakage experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakScenario {
    /// The private value the experiment wrote/read.
    pub secret: Vec<u8>,
    /// Payload records the non-member recovered from its blockchain.
    pub recovered: Vec<LeakedRecord>,
    /// Whether the plaintext secret was among them.
    pub leaked: bool,
}

/// §V-B1: PDC leakage through PDC **read** transactions, using the
/// [`PerfTest`] chaincode of the paper's Listing 1 (GitHub project \[14\]).
///
/// org1 is the collection member; org2 is not. The org1 client records an
/// audited read on-chain via `submit_transaction`; afterwards the
/// non-member org2 peer parses its local blockchain. With the original
/// framework the plaintext asset leaks; with New Feature 2 the block only
/// carries its SHA-256.
pub fn run_read_leakage_scenario(defense: DefenseConfig, seed: u64) -> LeakScenario {
    let secret = b"private-performance-asset".to_vec();
    let mut net = NetworkBuilder::new("mychannel")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(seed)
        .defense(defense)
        .build();
    let definition = ChaincodeDefinition::new("perf")
        // The project endorses with org1 only; reads by the member must
        // validate, so the chaincode-level policy names org1's peer.
        .with_endorsement_policy("OR('Org1MSP.peer')")
        .with_collection(
            CollectionConfig::membership_of("perfCollection", &[OrgId::new("Org1MSP")])
                .with_member_only_read(false),
        );
    net.deploy_chaincode(definition, Arc::new(PerfTest::new("perfCollection")));

    // The member creates the private asset (value via transient map).
    let created = net
        .submit_transaction(
            "client0.org1",
            "perf",
            "createPrivatePerfTest",
            &["t1"],
            &[("asset", secret.as_slice())],
            &["peer0.org1"],
        )
        .expect("create succeeds");
    assert!(created.validation_code.is_valid());

    // The audited read: submitTransaction, not evaluate — the whole point
    // of the use case is recording who read what (§IV-B1).
    let read = net
        .submit_transaction(
            "client0.org1",
            "perf",
            "readPrivatePerfTest",
            &["t1"],
            &[],
            &["peer0.org1"],
        )
        .expect("read succeeds");
    assert!(read.validation_code.is_valid());
    // The client got the plaintext either way.
    assert_eq!(read.payload, secret);

    // The non-member peer mines its own blockchain copy.
    finish(net, "peer0.org2", secret)
}

/// §V-B2: PDC leakage through PDC **write** transactions, using the
/// [`SaccPrivate`] chaincode of the paper's Listing 2 (GitHub project
/// \[15\]): its `set` function returns the written value in the payload.
///
/// org1 and org2 are collection members; org3 is not, yet recovers the
/// value from its local blocks under the original framework.
pub fn run_write_leakage_scenario(defense: DefenseConfig, seed: u64) -> LeakScenario {
    let secret = b"confidential-price-7500".to_vec();
    let mut net = NetworkBuilder::new("mychannel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .defense(defense)
        .build();
    let definition = ChaincodeDefinition::new("sacc").with_collection(
        CollectionConfig::membership_of("demo", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")]),
    );
    net.deploy_chaincode(definition, Arc::new(SaccPrivate::new("demo")));

    let secret_str = String::from_utf8(secret.clone()).expect("ascii secret");
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sacc",
            "set",
            &["k1", &secret_str],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .expect("set succeeds");
    assert!(outcome.validation_code.is_valid());

    finish(net, "peer0.org3", secret)
}

fn finish(net: FabricNetwork, non_member_peer: &str, secret: Vec<u8>) -> LeakScenario {
    let recovered = extract_payload_leaks(net.peer(non_member_peer));
    let leaked = recovered.iter().any(|r| r.payload == secret);
    LeakScenario {
        secret,
        recovered,
        leaked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::sha256;

    #[test]
    fn read_leakage_on_original_framework() {
        let s = run_read_leakage_scenario(DefenseConfig::original(), 101);
        assert!(s.leaked, "non-member should recover the plaintext");
        assert!(s.recovered.iter().any(|r| r.payload == s.secret));
    }

    #[test]
    fn read_leakage_stopped_by_feature2() {
        let s = run_read_leakage_scenario(DefenseConfig::feature2(), 102);
        assert!(!s.leaked, "feature 2 must stop the plaintext leak");
        // The blocks now carry only the SHA-256 of the secret.
        assert!(s
            .recovered
            .iter()
            .any(|r| r.payload == sha256(&s.secret).0.to_vec()));
    }

    #[test]
    fn write_leakage_on_original_framework() {
        let s = run_write_leakage_scenario(DefenseConfig::original(), 103);
        assert!(s.leaked);
    }

    #[test]
    fn write_leakage_stopped_by_feature2() {
        let s = run_write_leakage_scenario(DefenseConfig::feature2(), 104);
        assert!(!s.leaked);
    }
}
