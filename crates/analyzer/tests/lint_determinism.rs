//! Parallelism must never change output: `scan_corpus` with any worker
//! count has to produce byte-identical aggregate and lint reports to the
//! sequential reference scan.

use fabric_analyzer::{
    corpus, lint_corpus, lint_corpus_with_flow, scan_corpus_sequential, scan_corpus_with,
    CorpusReport, CorpusSpec,
};
use fabric_lint::render;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_corpus_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "fabric-lint-determinism-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small internally-consistent corpus spec derived from a handful of
/// free parameters.
fn spec_from(total_extra: usize, explicit: usize, implicit: usize, seed: u64) -> CorpusSpec {
    let pdc = explicit + implicit;
    let custom = explicit / 2;
    let chaincode_level = explicit - custom;
    CorpusSpec {
        per_year: vec![(2019, pdc + total_extra, pdc)],
        explicit_only: explicit,
        both: 0,
        implicit_only: implicit,
        custom_collection_policy: custom,
        configtx_majority: chaincode_level,
        configtx_other: 0,
        read_leak: explicit,
        read_and_write_leak: explicit / 2,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_scan_reports_are_byte_identical(
        total_extra in 0usize..4,
        explicit in 1usize..5,
        implicit in 0usize..3,
        seed in 0u64..1000,
        workers in 2usize..6,
    ) {
        let spec = spec_from(total_extra, explicit, implicit, seed);
        prop_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
        let dir = temp_corpus_dir();
        corpus::materialize(&spec, &dir).expect("materialize corpus");

        let sequential = scan_corpus_sequential(&dir).expect("sequential scan");
        let parallel = scan_corpus_with(&dir, workers).expect("parallel scan");
        prop_assert_eq!(&sequential, &parallel, "report order changed under {} workers", workers);

        // Aggregate renders byte-match.
        let agg_seq = CorpusReport::from_reports(&sequential);
        let agg_par = CorpusReport::from_reports(&parallel);
        prop_assert_eq!(agg_seq.to_json(), agg_par.to_json());

        // Lint renders byte-match in every output format.
        let findings_seq = lint_corpus(&sequential);
        let findings_par = lint_corpus(&parallel);
        prop_assert_eq!(render::render_text(&findings_seq), render::render_text(&findings_par));
        prop_assert_eq!(render::render_json(&findings_seq), render::render_json(&findings_par));
        prop_assert_eq!(render::render_sarif(&findings_seq), render::render_sarif(&findings_par));

        // With flow analysis merged in (`--flow`), renders still
        // byte-match regardless of worker count on either axis.
        let flow_seq = lint_corpus_with_flow(&sequential, 1);
        let flow_par = lint_corpus_with_flow(&parallel, workers);
        prop_assert_eq!(render::render_text(&flow_seq), render::render_text(&flow_par));
        prop_assert_eq!(render::render_json(&flow_seq), render::render_json(&flow_par));
        prop_assert_eq!(render::render_sarif(&flow_seq), render::render_sarif(&flow_par));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Flow analysis of the built-in registry alone is byte-deterministic
/// across repeated runs and worker counts — even though one registered
/// sample (`leaky_escrow::stamp`) is deliberately nondeterministic.
#[test]
fn flow_findings_are_deterministic_across_runs_and_workers() {
    let registry = fabric_flow::sample_registry();
    let reference = fabric_flow::analyze_targets(&registry);
    assert!(
        !reference.is_empty(),
        "registry must surface the leaky sample"
    );
    for workers in [1, 2, 3, 5, 8] {
        let run = fabric_flow::analyze_targets_with(&registry, workers);
        assert_eq!(
            render::render_text(&reference),
            render::render_text(&run),
            "worker count {workers} changed flow output"
        );
        assert_eq!(render::render_json(&reference), render::render_json(&run));
        assert_eq!(render::render_sarif(&reference), render::render_sarif(&run));
    }
}

/// The synthetic corpus reproduces the paper's headline misuse: most
/// explicit projects omit `EndorsementPolicy` (PDC001) and leak private
/// data through the payload (PDC009).
#[test]
fn lint_over_synthetic_corpus_finds_the_paper_misuses() {
    let dir = temp_corpus_dir();
    corpus::materialize(&CorpusSpec::small(7), &dir).expect("materialize corpus");
    let reports = fabric_analyzer::scan_corpus(&dir).expect("scan");
    let findings = lint_corpus(&reports);
    let fired: std::collections::BTreeSet<&str> = findings.iter().map(|f| f.rule_id).collect();
    assert!(fired.contains("PDC001"), "fired: {fired:?}");
    assert!(fired.contains("PDC009"), "fired: {fired:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
