//! Bridge from scanner output to the `fabric-lint` rule engine.
//!
//! [`scan_project`](crate::scan_project) extracts raw facts from a
//! project's file tree; this module reshapes a [`ProjectReport`] into a
//! [`LintSubject`] so the same rules that check live
//! `ChaincodeDefinition`s also run over scanned corpora.
//!
//! A scanned project does not state its channel membership, so the
//! bridge approximates the channel as the union of organizations
//! *observed* in any policy expression (membership policies, collection
//! endorsement policies, the `configtx.yaml` default). That is a lower
//! bound: an organization named in a policy must exist on the channel.
//! Rules that reason about non-members therefore only fire on orgs the
//! project itself names — never on invented ones.

use crate::scan::{LeakKind, ProjectReport};
use fabric_lint::{CollectionFacts, LeakChannel, LeakFact, LintSubject};
use fabric_policy::{Policy, SignaturePolicy};
use fabric_types::OrgId;
use std::collections::BTreeSet;

/// Converts one scanned project into a lint subject.
pub fn subject_from_report(report: &ProjectReport) -> LintSubject {
    let name = report
        .path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| report.path.to_string_lossy().into_owned());
    let uri = report.path.to_string_lossy().into_owned();

    let mut observed: BTreeSet<OrgId> = BTreeSet::new();
    let mut observe = |expr: &str| {
        if let Ok(Policy::Signature(p)) = Policy::parse(expr) {
            observed.extend(p.organizations());
        }
    };
    if let Some(p) = &report.default_policy {
        observe(p);
    }
    for c in &report.collections {
        if let Some(p) = &c.member_policy {
            observe(p);
        }
        if let Some(p) = &c.endorsement_policy {
            observe(p);
        }
    }

    let collections = report
        .collections
        .iter()
        .map(|c| CollectionFacts {
            name: c.name.clone(),
            uri: uri.clone(),
            member_orgs: c
                .member_policy
                .as_deref()
                .and_then(|p| SignaturePolicy::parse(p).ok())
                .map(|p| p.organizations())
                .unwrap_or_default(),
            endorsement_policy: c.endorsement_policy.clone(),
            required_peer_count: c.required_peer_count,
            max_peer_count: c.max_peer_count,
            block_to_live: c.block_to_live,
            member_only_read: c.member_only_read,
            member_only_write: c.member_only_write,
        })
        .collect();

    let leaks = report
        .leaks
        .iter()
        .map(|l| LeakFact {
            uri: l.file.to_string_lossy().into_owned(),
            function: l.function.clone(),
            channel: match l.kind {
                LeakKind::Read => LeakChannel::ReadPayload,
                LeakKind::Write => LeakChannel::WritePayload,
            },
        })
        .collect();

    LintSubject {
        name,
        uri,
        channel_orgs: observed.into_iter().collect(),
        chaincode_policy: report.default_policy.clone(),
        collections,
        leaks,
        // Static scans cannot see a running network or executable
        // chaincode, so PDC010/PDC011/PDC018/PDC019/PDC020 never fire on
        // corpus subjects.
        telemetry_attached: None,
        flight_recorder: None,
        flow_analyzed: None,
        monitor_attached: None,
        commit_lanes: None,
        consortium_channels: None,
    }
}

/// Lints every scanned project, returning one merged, deterministically
/// ordered finding list.
pub fn lint_corpus(reports: &[ProjectReport]) -> Vec<fabric_lint::Finding> {
    let subjects: Vec<LintSubject> = reports.iter().map(subject_from_report).collect();
    fabric_lint::lint_subjects(&subjects)
}

/// [`lint_corpus`] plus information-flow taint analysis of the built-in
/// sample registry (`analyze lint --flow`), fanned out over `workers`
/// threads. Both finding sets land in one deterministically ordered
/// list, so every renderer shows configuration and flow findings
/// side by side.
pub fn lint_corpus_with_flow(
    reports: &[ProjectReport],
    workers: usize,
) -> Vec<fabric_lint::Finding> {
    let mut findings = lint_corpus(reports);
    findings.extend(fabric_flow::analyze_targets_with(
        &fabric_flow::sample_registry(),
        workers,
    ));
    fabric_lint::sort_and_dedup(&mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{CollectionDef, LeakFinding};
    use std::path::PathBuf;

    fn report_with_collection(c: CollectionDef) -> ProjectReport {
        ProjectReport {
            path: PathBuf::from("/corpus/proj-1"),
            explicit_pdc: true,
            collections: vec![c],
            default_policy: Some("MAJORITY Endorsement".into()),
            ..ProjectReport::default()
        }
    }

    #[test]
    fn subject_carries_all_facts() {
        let mut report = report_with_collection(CollectionDef {
            name: "c1".into(),
            has_endorsement_policy: true,
            member_policy: Some("OR('Org1MSP.member','Org2MSP.member')".into()),
            endorsement_policy: Some("AND('Org1MSP.peer','Org3MSP.peer')".into()),
            required_peer_count: Some(0),
            max_peer_count: Some(3),
            block_to_live: Some(5),
            member_only_read: Some(false),
            member_only_write: None,
        });
        report.leaks.push(LeakFinding {
            file: PathBuf::from("chaincode/cc.go"),
            function: "setPrivate".into(),
            kind: LeakKind::Write,
        });

        let subject = subject_from_report(&report);
        assert_eq!(subject.name, "proj-1");
        assert_eq!(
            subject.chaincode_policy.as_deref(),
            Some("MAJORITY Endorsement")
        );
        // Observed orgs: members + the endorsement policy's Org3MSP.
        let names: Vec<&str> = subject.channel_orgs.iter().map(OrgId::as_str).collect();
        assert_eq!(names, ["Org1MSP", "Org2MSP", "Org3MSP"]);
        let c = &subject.collections[0];
        assert_eq!(c.member_orgs.len(), 2);
        assert_eq!(c.block_to_live, Some(5));
        assert_eq!(c.member_only_read, Some(false));
        assert_eq!(c.member_only_write, None);
        assert_eq!(subject.leaks[0].channel, LeakChannel::WritePayload);
    }

    #[test]
    fn lint_corpus_flags_the_paper_defaults() {
        // The corpus default shape: no EndorsementPolicy,
        // RequiredPeerCount 0 — PDC001 and PDC004 must fire.
        let report = report_with_collection(CollectionDef {
            name: "collectionPrivate".into(),
            member_policy: Some("OR('Org1MSP.member','Org2MSP.member')".into()),
            required_peer_count: Some(0),
            max_peer_count: Some(3),
            block_to_live: Some(1_000_000),
            member_only_read: Some(true),
            ..CollectionDef::default()
        });
        let findings = lint_corpus(std::slice::from_ref(&report));
        let ids: Vec<&str> = findings.iter().map(|f| f.rule_id).collect();
        assert!(ids.contains(&"PDC001"), "{ids:?}");
        assert!(ids.contains(&"PDC004"), "{ids:?}");
    }

    #[test]
    fn unknown_fields_produce_no_findings() {
        let report = report_with_collection(CollectionDef {
            name: "sparse".into(),
            member_policy: Some("OR('Org1MSP.member')".into()),
            has_endorsement_policy: true,
            endorsement_policy: Some("OR('Org1MSP.peer')".into()),
            ..CollectionDef::default()
        });
        let findings = lint_corpus(std::slice::from_ref(&report));
        assert!(
            findings.is_empty(),
            "sparse-but-defended config must stay silent: {findings:?}"
        );
    }
}
