//! A minimal from-scratch JSON parser (RFC 8259 subset sufficient for
//! Fabric collection-definition files).
//!
//! Kept dependency-free on purpose: the workspace's allowed external crates
//! do not include a JSON library, and the collection configs the analyzer
//! reads are small, flat documents.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, adequate for config files).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with source-order-independent (sorted) keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The numeric content if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing content.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for config
                            // files; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_collection_config() {
        let doc = r#"[
          {
            "Name": "collectionMarbles",
            "Policy": "OR('Org1MSP.member','Org2MSP.member')",
            "RequiredPeerCount": 0,
            "MaxPeerCount": 3,
            "BlockToLive": 1000000,
            "MemberOnlyRead": true
          }
        ]"#;
        let v = parse(doc).unwrap();
        let first = &v.as_array().unwrap()[0];
        assert_eq!(
            first.get("Name").unwrap().as_str(),
            Some("collectionMarbles")
        );
        assert_eq!(first.get("RequiredPeerCount"), Some(&Value::Number(0.0)));
        assert_eq!(first.get("MemberOnlyRead"), Some(&Value::Bool(true)));
        assert!(first.get("EndorsementPolicy").is_none());
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse(r#""a\n\"b\" A""#).unwrap(),
            Value::String("a\n\"b\" A".into())
        );
        let v = parse(r#"{"a":[1,{"b":[]}]}"#).unwrap();
        assert!(v.get("a").unwrap().as_array().is_some());
    }

    #[test]
    fn parses_unicode_text() {
        let v = parse(r#""héllo — ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo — ✓"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
            "{'single': 1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn error_reports_position() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.position, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Hostile input must yield errors, never panics.
        #[test]
        fn parse_never_panics(input in ".*") {
            let _ = parse(&input);
        }

        #[test]
        fn parse_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = parse(text);
            }
        }

        /// Escaped strings always roundtrip.
        #[test]
        fn escape_roundtrip(s in ".*") {
            let doc = format!("\"{}\"", escape(&s));
            let parsed = parse(&doc).unwrap();
            prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
        }
    }
}
