//! A from-scratch parser for the YAML subset used by `configtx.yaml`:
//! indentation-nested mappings, block lists (`- item`), scalar values
//! (optionally quoted), comments, and YAML anchors/aliases (which are
//! stripped, not resolved — the analyzer only reads literal fields).
//!
//! This is *not* a general YAML implementation; it covers what Fabric
//! channel configuration files actually contain, which is all the paper's
//! tool needed.

use std::fmt;

/// A parsed YAML-subset node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Yaml {
    /// A scalar (always kept as a string; configtx fields are strings).
    Scalar(String),
    /// A block list.
    List(Vec<Yaml>),
    /// A mapping in source order.
    Map(Vec<(String, Yaml)>),
    /// An empty value (`key:` with nothing nested).
    Empty,
}

impl Yaml {
    /// Looks up a key in a mapping.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The scalar content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Walks a path of mapping keys.
    pub fn path(&self, keys: &[&str]) -> Option<&Yaml> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// Depth-first search for any mapping entry `name` that itself has a
    /// scalar child `Rule`, returning that rule. This is how the analyzer
    /// finds the default `Endorsement` policy wherever the profile nests it.
    pub fn find_rule(&self, name: &str) -> Option<&str> {
        match self {
            Yaml::Map(pairs) => {
                for (k, v) in pairs {
                    if k == name {
                        if let Some(rule) = v.get("Rule").and_then(Yaml::as_str) {
                            return Some(rule);
                        }
                    }
                    if let Some(found) = v.find_rule(name) {
                        return Some(found);
                    }
                }
                None
            }
            Yaml::List(items) => items.iter().find_map(|i| i.find_rule(name)),
            _ => None,
        }
    }
}

/// A YAML-subset parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yaml error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

struct Line {
    number: usize,
    indent: usize,
    content: String,
}

/// Parses a `configtx.yaml`-style document.
///
/// # Errors
///
/// Returns [`YamlError`] on tab indentation or malformed entries.
pub fn parse(input: &str) -> Result<Yaml, YamlError> {
    let mut lines = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let number = i + 1;
        let without_comment = strip_comment(raw);
        let trimmed = without_comment.trim_end();
        if trimmed.trim().is_empty() || trimmed.trim() == "---" {
            continue;
        }
        if trimmed.trim_start_matches(' ').starts_with('\t') || trimmed.starts_with('\t') {
            return Err(YamlError {
                line: number,
                message: "tab indentation is not supported".into(),
            });
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        lines.push(Line {
            number,
            indent,
            content: trimmed.trim_start().to_string(),
        });
    }
    let mut pos = 0;
    let root = parse_block(&lines, &mut pos, 0)?;
    Ok(root)
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            // A comment starts at '#' at start-of-line or after space.
            '#' if !in_single && !in_double && (i == 0 || line[..i].ends_with(' ')) => {
                return out;
            }
            _ => {}
        }
        out.push(c);
    }
    out
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let Some(first) = lines.get(*pos) else {
        return Ok(Yaml::Empty);
    };
    if first.content.starts_with("- ") || first.content == "-" {
        parse_list(lines, pos, indent)
    } else {
        parse_map(lines, pos, indent)
    }
}

fn parse_list(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut items = Vec::new();
    while let Some(line) = lines.get(*pos) {
        if line.indent < indent || !(line.content.starts_with("- ") || line.content == "-") {
            break;
        }
        if line.indent > indent {
            return Err(YamlError {
                line: line.number,
                message: "unexpected list indentation".into(),
            });
        }
        let rest = line.content[1..].trim_start().to_string();
        *pos += 1;
        if rest.is_empty() {
            // A nested block under the dash.
            let nested = parse_block(lines, pos, indent + 1)?;
            items.push(nested);
        } else if let Some((key, value)) = split_key(&rest) {
            // "- key: value" — an inline map entry, possibly followed by
            // sibling keys at deeper indentation.
            let first_value = if value.is_empty() {
                Yaml::Empty
            } else {
                Yaml::Scalar(clean_scalar(&value))
            };
            let mut pairs = vec![(key, first_value)];
            while let Some(next) = lines.get(*pos) {
                if next.indent > indent && !next.content.starts_with("- ") {
                    if let Some((k, v)) = split_key(&next.content) {
                        *pos += 1;
                        if v.is_empty() {
                            let nested = parse_block(lines, pos, next.indent + 1)?;
                            pairs.push((k, nested));
                        } else {
                            pairs.push((k, Yaml::Scalar(clean_scalar(&v))));
                        }
                        continue;
                    }
                }
                break;
            }
            items.push(Yaml::Map(pairs));
        } else {
            let scalar = clean_scalar(&rest);
            let has_nested_block =
                scalar.is_empty() && lines.get(*pos).is_some_and(|next| next.indent > indent);
            if has_nested_block {
                // "- &Anchor" followed by an indented mapping: the anchor
                // is stripped and the nested block is the list item.
                let child_indent = lines[*pos].indent;
                let nested = parse_block(lines, pos, child_indent)?;
                items.push(nested);
            } else {
                items.push(Yaml::Scalar(scalar));
            }
        }
    }
    Ok(Yaml::List(items))
}

fn parse_map(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut pairs = Vec::new();
    while let Some(line) = lines.get(*pos) {
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(YamlError {
                line: line.number,
                message: "unexpected indentation".into(),
            });
        }
        if line.content.starts_with("- ") || line.content == "-" {
            break;
        }
        let Some((key, value)) = split_key(&line.content) else {
            return Err(YamlError {
                line: line.number,
                message: format!("expected 'key:' entry, found {:?}", line.content),
            });
        };
        *pos += 1;
        if value.is_empty() {
            // Nested block (or empty).
            match lines.get(*pos) {
                Some(next) if next.indent > indent => {
                    let child_indent = next.indent;
                    let nested = parse_block(lines, pos, child_indent)?;
                    pairs.push((key, nested));
                }
                _ => pairs.push((key, Yaml::Empty)),
            }
        } else {
            let scalar = clean_scalar(&value);
            let has_nested_block =
                scalar.is_empty() && lines.get(*pos).is_some_and(|next| next.indent > indent);
            if has_nested_block {
                // "Key: &Anchor" followed by an indented block: the anchor
                // is stripped and the block is the value.
                let child_indent = lines[*pos].indent;
                let nested = parse_block(lines, pos, child_indent)?;
                pairs.push((key, nested));
            } else {
                pairs.push((key, Yaml::Scalar(scalar)));
            }
        }
    }
    Ok(Yaml::Map(pairs))
}

fn split_key(content: &str) -> Option<(String, String)> {
    // Find the first ':' outside quotes.
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in content.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ':' if !in_single && !in_double => {
                let after = &content[i + 1..];
                if after.is_empty() || after.starts_with(' ') {
                    let key = clean_scalar(content[..i].trim());
                    return Some((key, after.trim().to_string()));
                }
            }
            _ => {}
        }
    }
    None
}

fn clean_scalar(s: impl AsRef<str>) -> String {
    let mut s = s.as_ref().trim();
    // Strip anchors/aliases/merge keys: "&Anchor value", "*Alias".
    if let Some(rest) = s.strip_prefix('&') {
        s = match rest.split_once(' ') {
            Some((_, tail)) => tail.trim(),
            None => "",
        };
    }
    if s.starts_with('*') {
        return s.trim_start_matches('*').to_string();
    }
    let s = s.trim();
    if (s.starts_with('"') && s.ends_with('"') && s.len() >= 2)
        || (s.starts_with('\'') && s.ends_with('\'') && s.len() >= 2)
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONFIGTX: &str = r#"
# Channel configuration
Organizations:
    - &Org1
        Name: Org1MSP
        ID: Org1MSP
        Policies:
            Endorsement:
                Type: Signature
                Rule: "OR('Org1MSP.peer')"

Application: &ApplicationDefaults
    Organizations:
    Policies:
        Readers:
            Type: ImplicitMeta
            Rule: "ANY Readers"
        Endorsement:
            Type: ImplicitMeta
            Rule: "MAJORITY Endorsement"
    Capabilities:
        V2_0: true
"#;

    #[test]
    fn parses_configtx_and_finds_endorsement_rule() {
        let doc = parse(CONFIGTX).unwrap();
        let rule = doc
            .path(&["Application", "Policies", "Endorsement", "Rule"])
            .and_then(Yaml::as_str);
        assert_eq!(rule, Some("MAJORITY Endorsement"));
        // The DFS helper finds it without knowing the nesting.
        assert_eq!(
            doc.path(&["Application"]).unwrap().find_rule("Endorsement"),
            Some("MAJORITY Endorsement")
        );
    }

    #[test]
    fn list_of_anchored_maps() {
        let doc = parse(CONFIGTX).unwrap();
        let orgs = doc.get("Organizations").unwrap();
        match orgs {
            Yaml::List(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("Name").and_then(Yaml::as_str), Some("Org1MSP"));
                // The org's own signature policy is reachable too.
                assert_eq!(
                    items[0].find_rule("Endorsement"),
                    Some("OR('Org1MSP.peer')")
                );
            }
            other => panic!("expected list, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_quotes() {
        let doc = parse("key: \"value # not a comment\" # real comment\nother: 1\n").unwrap();
        assert_eq!(
            doc.get("key").and_then(Yaml::as_str),
            Some("value # not a comment")
        );
        assert_eq!(doc.get("other").and_then(Yaml::as_str), Some("1"));
    }

    #[test]
    fn empty_values_and_plain_lists() {
        let doc = parse("a:\nb:\n    - one\n    - two\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Yaml::Empty));
        assert_eq!(
            doc.get("b"),
            Some(&Yaml::List(vec![
                Yaml::Scalar("one".into()),
                Yaml::Scalar("two".into())
            ]))
        );
    }

    #[test]
    fn rejects_tabs() {
        assert!(parse("a:\n\tb: 1\n").is_err());
    }

    #[test]
    fn find_rule_returns_none_when_absent() {
        let doc = parse("a: 1\n").unwrap();
        assert_eq!(doc.find_rule("Endorsement"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Hostile input must yield errors, never panics.
        #[test]
        fn parse_never_panics(input in ".*") {
            let _ = parse(&input);
        }

        /// Generated key/value documents always parse back.
        #[test]
        fn flat_documents_roundtrip(
            pairs in proptest::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,12}", "[a-zA-Z0-9 _.-]{0,16}"), 1..8)
        ) {
            let mut doc = String::new();
            let mut expected: Vec<(String, String)> = Vec::new();
            for (k, v) in &pairs {
                if expected.iter().any(|(ek, _)| ek == k) {
                    continue;
                }
                doc.push_str(&format!("{k}: {}\n", v.trim()));
                expected.push((k.clone(), v.trim().to_string()));
            }
            let parsed = parse(&doc).unwrap();
            for (k, v) in &expected {
                if v.is_empty() {
                    // `key:` with no value parses as Empty.
                    prop_assert_eq!(parsed.get(k), Some(&Yaml::Empty));
                } else {
                    prop_assert_eq!(parsed.get(k).and_then(Yaml::as_str), Some(v.as_str()));
                }
            }
        }
    }
}
