//! The project scanner: reimplements the paper's §V-C1 detection rules.

use crate::json;
use crate::yamlish;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Keywords whose presence marks a `.json` file as an explicit PDC
/// definition (§V-C1).
const PDC_JSON_KEYWORDS: [&str; 5] = [
    "RequiredPeerCount",
    "MaxPeerCount",
    "BlockToLive",
    "MemberOnlyRead",
    "MemberOnlyWrite",
];

/// The marker of implicit PDC usage in chaincode (§V-C1).
const IMPLICIT_MARKER: &str = "_implicit_org_";

/// Source extensions scanned for chaincode patterns.
const CHAINCODE_EXTENSIONS: [&str; 4] = ["go", "js", "ts", "java"];

/// One collection found in an explicit definition file.
///
/// Beyond the paper's binary "is `EndorsementPolicy` customized" signal,
/// the scanner retains every configuration field it saw so the linter
/// (`fabric-lint`) can check the full misconfiguration surface. Fields a
/// definition file omitted stay `None` — the linter never guesses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollectionDef {
    /// The `Name` field.
    pub name: String,
    /// Whether the optional `EndorsementPolicy` is customized; when absent
    /// the chaincode-level policy validates PDC transactions — the
    /// vulnerable default.
    pub has_endorsement_policy: bool,
    /// The membership `Policy` expression.
    pub member_policy: Option<String>,
    /// The `EndorsementPolicy` signature-policy expression, when the file
    /// customizes one (`EndorsementPolicy.SignaturePolicy`, or a bare
    /// string).
    pub endorsement_policy: Option<String>,
    /// `RequiredPeerCount`, when present.
    pub required_peer_count: Option<u32>,
    /// `MaxPeerCount`, when present.
    pub max_peer_count: Option<u32>,
    /// `BlockToLive`, when present.
    pub block_to_live: Option<u64>,
    /// `MemberOnlyRead`, when present.
    pub member_only_read: Option<bool>,
    /// `MemberOnlyWrite`, when present.
    pub member_only_write: Option<bool>,
}

/// Which direction a leaky chaincode function leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeakKind {
    /// A function returns `GetPrivateData` results (Listing 1 pattern).
    Read,
    /// A function writes a value with `PutPrivateData` and returns that
    /// same value (Listing 2 pattern).
    Write,
}

impl fmt::Display for LeakKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeakKind::Read => f.write_str("read"),
            LeakKind::Write => f.write_str("write"),
        }
    }
}

/// A leaky function found in chaincode source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakFinding {
    /// Source file, relative to the project root.
    pub file: PathBuf,
    /// Function name (best effort).
    pub function: String,
    /// Leak direction.
    pub kind: LeakKind,
}

/// The scan result for one project directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProjectReport {
    /// Project root path.
    pub path: PathBuf,
    /// Explicit PDC: a keyword-matching `.json` definition exists.
    pub explicit_pdc: bool,
    /// Implicit PDC: chaincode references `_implicit_org_`.
    pub implicit_pdc: bool,
    /// Collections found in explicit definitions.
    pub collections: Vec<CollectionDef>,
    /// The channel default endorsement policy from `configtx.yaml`.
    pub default_policy: Option<String>,
    /// Project creation year, from repository metadata
    /// (`.git_meta.json`'s `created_at`), when present.
    pub year: Option<u16>,
    /// Leaky chaincode functions.
    pub leaks: Vec<LeakFinding>,
    /// Subdirectories the walk could not read (permissions, races).
    /// Non-empty means the report undercounts; `--json` consumers treat
    /// it as a failed scan.
    pub skipped_dirs: Vec<PathBuf>,
}

impl ProjectReport {
    /// Whether the project uses PDC at all.
    pub fn uses_pdc(&self) -> bool {
        self.explicit_pdc || self.implicit_pdc
    }

    /// Whether every collection relies on the chaincode-level policy
    /// (no `EndorsementPolicy` customization) — the attack precondition.
    pub fn uses_chaincode_level_policy(&self) -> bool {
        self.explicit_pdc && !self.collections.iter().any(|c| c.has_endorsement_policy)
    }

    /// Whether any function leaks private data by `kind`.
    pub fn leaks_by(&self, kind: LeakKind) -> bool {
        self.leaks.iter().any(|l| l.kind == kind)
    }
}

/// Whether `dir` looks like a single project rather than a corpus of
/// projects: a project keeps scannable files (JSON/YAML configuration or
/// chaincode sources) at its top level, while a corpus root holds only
/// project subdirectories.
///
/// # Errors
///
/// Returns an I/O error when the directory cannot be read.
pub fn dir_is_project(dir: &Path) -> std::io::Result<bool> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_file() {
            continue;
        }
        let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
            continue;
        };
        if matches!(ext, "json" | "yaml" | "yml") || CHAINCODE_EXTENSIONS.contains(&ext) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Scans one Fabric project directory.
///
/// # Errors
///
/// Returns an I/O error when the project root itself cannot be read (a
/// silently empty report would skew corpus aggregates). Unreadable
/// individual files are skipped, as the paper's tool did; unreadable
/// *subdirectories* are skipped but recorded in
/// [`ProjectReport::skipped_dirs`] so callers can refuse to trust the
/// partial result.
pub fn scan_project(root: &Path) -> std::io::Result<ProjectReport> {
    let mut report = ProjectReport {
        path: root.to_path_buf(),
        ..ProjectReport::default()
    };
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if dir == root => return Err(e),
            Err(_) => {
                report.skipped_dirs.push(dir);
                continue;
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
                continue;
            };
            let Ok(content) = fs::read_to_string(&path) else {
                continue;
            };
            match ext {
                "json" => scan_json_file(&content, &mut report),
                "yaml" | "yml"
                    if path
                        .file_name()
                        .is_some_and(|n| n.to_string_lossy().starts_with("configtx")) =>
                {
                    scan_configtx(&content, &mut report);
                }
                e if CHAINCODE_EXTENSIONS.contains(&e) => {
                    let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                    scan_chaincode(&content, &rel, &mut report);
                }
                _ => {}
            }
        }
    }
    // Stack order is traversal-dependent; sort so reports compare stably.
    report.skipped_dirs.sort();
    Ok(report)
}

/// Scans a directory of project directories (a corpus checkout), using
/// one scan worker per available core (capped at 8).
///
/// The report order — and therefore every rendered aggregate — is
/// byte-identical to a sequential scan: projects are assigned to workers
/// by index into the sorted directory list and results land back in
/// their slots, so parallelism never reorders output.
///
/// # Errors
///
/// Propagates traversal failures of the corpus root itself, or the first
/// (in directory order) project scan error.
pub fn scan_corpus(corpus_root: &Path) -> std::io::Result<Vec<ProjectReport>> {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    scan_corpus_with(corpus_root, workers)
}

/// Sequential [`scan_corpus`] — the reference implementation parallel
/// scans must byte-match.
pub fn scan_corpus_sequential(corpus_root: &Path) -> std::io::Result<Vec<ProjectReport>> {
    scan_corpus_with(corpus_root, 1)
}

/// Scans a corpus with an explicit worker count (`0` is treated as `1`).
///
/// # Errors
///
/// See [`scan_corpus`].
pub fn scan_corpus_with(corpus_root: &Path, workers: usize) -> std::io::Result<Vec<ProjectReport>> {
    let mut project_dirs: Vec<PathBuf> = fs::read_dir(corpus_root)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    project_dirs.sort();
    let workers = workers.clamp(1, project_dirs.len().max(1));

    let mut slots: Vec<Option<std::io::Result<ProjectReport>>> =
        (0..project_dirs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let dirs = &project_dirs;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    // Strided assignment: worker `w` scans dirs w, w+workers, …
                    (w..dirs.len())
                        .step_by(workers)
                        .map(|i| (i, scan_project(&dirs[i])))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("scan worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every slot scanned"))
        .collect()
}

/// Explicit-PDC detection: the `.json` must parse, contain objects with
/// `Name` + `Policy`, and mention the PDC-specific keywords.
fn scan_json_file(content: &str, report: &mut ProjectReport) {
    if content.contains("created_at") {
        if let Ok(meta) = json::parse(content) {
            if let Some(date) = meta.get("created_at").and_then(json::Value::as_str) {
                if let Ok(year) = date.chars().take(4).collect::<String>().parse() {
                    report.year = Some(year);
                }
            }
        }
    }
    if !PDC_JSON_KEYWORDS.iter().any(|k| content.contains(k)) {
        return;
    }
    let Ok(value) = json::parse(content) else {
        return;
    };
    let collections: Vec<&json::Value> = match &value {
        json::Value::Array(items) => items.iter().collect(),
        obj @ json::Value::Object(_) => vec![obj],
        _ => return,
    };
    for col in collections {
        let Some(name) = col.get("Name").and_then(json::Value::as_str) else {
            continue;
        };
        if col.get("Policy").is_none() {
            continue;
        }
        report.explicit_pdc = true;
        let endorsement_policy = col.get("EndorsementPolicy").and_then(|ep| {
            ep.get("SignaturePolicy")
                .and_then(json::Value::as_str)
                .or_else(|| ep.as_str())
                .map(str::to_string)
        });
        let count = |key: &str| col.get(key).and_then(json::Value::as_f64).map(|n| n as u32);
        report.collections.push(CollectionDef {
            name: name.to_string(),
            has_endorsement_policy: col.get("EndorsementPolicy").is_some(),
            member_policy: col
                .get("Policy")
                .and_then(json::Value::as_str)
                .map(str::to_string),
            endorsement_policy,
            required_peer_count: count("RequiredPeerCount"),
            max_peer_count: count("MaxPeerCount"),
            block_to_live: col
                .get("BlockToLive")
                .and_then(json::Value::as_f64)
                .map(|n| n as u64),
            member_only_read: col.get("MemberOnlyRead").and_then(json::Value::as_bool),
            member_only_write: col.get("MemberOnlyWrite").and_then(json::Value::as_bool),
        });
    }
}

fn scan_configtx(content: &str, report: &mut ProjectReport) {
    let Ok(doc) = yamlish::parse(content) else {
        return;
    };
    // Look for the application-level default first, then anywhere.
    let rule = doc
        .path(&["Application", "Policies", "Endorsement", "Rule"])
        .and_then(yamlish::Yaml::as_str)
        .or_else(|| doc.find_rule("Endorsement"));
    if let Some(rule) = rule {
        report.default_policy = Some(rule.to_string());
    }
}

/// Chaincode analysis: implicit-PDC marker plus the two leakage patterns.
fn scan_chaincode(content: &str, rel_path: &Path, report: &mut ProjectReport) {
    if content.contains(IMPLICIT_MARKER) {
        report.implicit_pdc = true;
    }
    for function in extract_functions(content) {
        // Read leakage (Listing 1): a variable bound to GetPrivateData is
        // returned (possibly after intermediate transformations binding new
        // names from old ones).
        let mut tainted: Vec<String> = Vec::new();
        for line in function.body.lines() {
            if let Some(var) = assigned_variable(line) {
                let rhs_has_get = lowercase_contains(line, "getprivatedata(")
                    || lowercase_contains(line, "getprivatedata (");
                let rhs_uses_tainted = tainted.iter().any(|t| mentions(line_rhs(line), t));
                if rhs_has_get || rhs_uses_tainted {
                    tainted.push(var);
                }
            }
            if let Some(expr) = returned_expression(line) {
                if tainted.iter().any(|t| mentions(&expr, t)) {
                    report.leaks.push(LeakFinding {
                        file: rel_path.to_path_buf(),
                        function: function.name.clone(),
                        kind: LeakKind::Read,
                    });
                    break;
                }
            }
        }
        // Write leakage (Listing 2): PutPrivateData(..., X) followed by
        // `return X` where X is the same argument expression.
        let mut put_values: Vec<String> = Vec::new();
        for line in function.body.lines() {
            if let Some(arg) = put_private_value_argument(line) {
                put_values.push(arg);
            }
            if let Some(expr) = returned_expression(line) {
                if put_values
                    .iter()
                    .any(|v| !v.is_empty() && expr.contains(v.as_str()))
                {
                    report.leaks.push(LeakFinding {
                        file: rel_path.to_path_buf(),
                        function: function.name.clone(),
                        kind: LeakKind::Write,
                    });
                    break;
                }
            }
        }
    }
}

struct FunctionBlock {
    name: String,
    body: String,
}

/// Extracts `func name(...) { ... }` / `function name(...) {}` /
/// `async name(ctx, ...) {}` blocks by brace matching. Language-agnostic
/// enough for Go, JS/TS and Java chaincode.
fn extract_functions(source: &str) -> Vec<FunctionBlock> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < source.len() {
        let rest = &source[i..];
        let is_fn_keyword = rest.starts_with("func ")
            || rest.starts_with("function ")
            || rest.starts_with("async ")
            || rest.starts_with("public ")
            || rest.starts_with("private ");
        let at_line_start = i == 0 || bytes[i - 1] == b'\n' || bytes[i - 1] == b' ';
        if is_fn_keyword && at_line_start {
            if let Some(open) = rest.find('{') {
                let header = &rest[..open];
                if header.contains('(') {
                    let name = function_name(header);
                    if let Some(close) = matching_brace(rest, open) {
                        out.push(FunctionBlock {
                            name,
                            body: rest[open + 1..close].to_string(),
                        });
                        i += close + 1;
                        continue;
                    }
                }
            }
        }
        // Advance one character (UTF-8 safe).
        i += source[i..].chars().next().map_or(1, char::len_utf8);
    }
    out
}

fn function_name(header: &str) -> String {
    let before_paren = header.split('(').next().unwrap_or(header);
    before_paren
        .split_whitespace()
        .last()
        .unwrap_or("anonymous")
        .trim_start_matches(['*', '&'])
        .to_string()
}

fn matching_brace(s: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices().skip_while(|(i, _)| *i < open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn lowercase_contains(line: &str, needle: &str) -> bool {
    line.to_ascii_lowercase().contains(needle)
}

/// The variable bound by `x := rhs`, `x = rhs`, `const x = rhs`,
/// `let/var x = rhs`, or Go's `x, err := rhs`.
fn assigned_variable(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let (lhs, _) = trimmed.split_once(":=").or_else(|| {
        let t = trimmed
            .trim_start_matches("const ")
            .trim_start_matches("let ")
            .trim_start_matches("var ");
        // Avoid matching `==`, `!=`, `<=`, `>=`.
        let eq = t.find('=')?;
        if t[eq..].starts_with("==") || (eq > 0 && matches!(&t[eq - 1..eq], "!" | "<" | ">")) {
            return None;
        }
        Some((&t[..eq], &t[eq + 1..]))
    })?;
    let first = lhs.split(',').next()?.trim();
    if first.is_empty()
        || !first
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return None;
    }
    Some(first.to_string())
}

fn line_rhs(line: &str) -> &str {
    line.split_once(":=")
        .or_else(|| line.split_once('='))
        .map(|(_, rhs)| rhs)
        .unwrap_or("")
}

/// The expression of a `return ...` / `throw`-free `return` statement.
fn returned_expression(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("return")?;
    if !rest.is_empty() && !rest.starts_with([' ', '\t', ';']) {
        return None; // e.g. `returnValue(...)`
    }
    Some(rest.trim().trim_end_matches(';').to_string())
}

/// Whether `expr` mentions identifier `var` as a standalone token.
fn mentions(expr: &str, var: &str) -> bool {
    expr.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .any(|tok| tok == var || tok.strip_suffix(".toString").is_some_and(|t| t == var))
}

/// The value argument of `PutPrivateData(collection, key, value)`.
fn put_private_value_argument(line: &str) -> Option<String> {
    let lower = line.to_ascii_lowercase();
    let idx = lower.find("putprivatedata")?;
    let after = &line[idx..];
    let open = after.find('(')?;
    let close = matching_paren(after, open)?;
    let args = &after[open + 1..close];
    let parts = split_top_level_args(args);
    let value = parts.last()?.trim();
    // Unwrap Go's `[]byte(x)` and JS's `Buffer.from(x)`.
    let value = value
        .strip_prefix("[]byte(")
        .and_then(|v| v.strip_suffix(')'))
        .or_else(|| {
            value
                .strip_prefix("Buffer.from(")
                .and_then(|v| v.strip_suffix(')'))
        })
        .unwrap_or(value);
    Some(value.trim().to_string())
}

fn matching_paren(s: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices().skip_while(|(i, _)| *i < open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn split_top_level_args(args: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&args[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&args[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 2 of the paper, verbatim shape.
    const LISTING2_GO: &str = r#"
package main

func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    if len(args) != 2 {
        return "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
    }
    err := stub.PutPrivateData("demo", args[0], []byte(args[1]))
    if err != nil {
        return "", fmt.Errorf("Failed to set asset: %s", args[0])
    }
    return args[1], nil
}
"#;

    /// Listing 1 of the paper, Node.js shape.
    const LISTING1_JS: &str = r#"
async readPrivatePerfTest(ctx, perfTestId) {
    const exists = await this.privatePerfTestExists(ctx, perfTestId);
    if (!exists) {
        throw new Error(`The perf test does not exist`);
    }
    const buffer = await ctx.stub.getPrivateData(collection, perfTestId);
    const asset = JSON.parse(buffer.toString());
    return asset;
}
"#;

    fn scan_source(src: &str, ext: &str) -> ProjectReport {
        let mut report = ProjectReport::default();
        scan_chaincode(src, Path::new(&format!("cc.{ext}")), &mut report);
        report
    }

    #[test]
    fn detects_listing2_write_leak() {
        let report = scan_source(LISTING2_GO, "go");
        assert!(report.leaks_by(LeakKind::Write), "{:?}", report.leaks);
        assert_eq!(report.leaks[0].function, "setPrivate");
    }

    #[test]
    fn detects_listing1_read_leak() {
        let report = scan_source(LISTING1_JS, "js");
        assert!(report.leaks_by(LeakKind::Read), "{:?}", report.leaks);
        assert_eq!(report.leaks[0].function, "readPrivatePerfTest");
    }

    #[test]
    fn safe_functions_are_not_flagged() {
        let safe_go = r#"
func setPrivateSafe(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    err := stub.PutPrivateData("demo", args[0], []byte(args[1]))
    if err != nil {
        return "", err
    }
    return args[0], nil
}

func getPublic(stub shim.ChaincodeStubInterface, key string) (string, error) {
    value, err := stub.GetState(key)
    return string(value), err
}
"#;
        let report = scan_source(safe_go, "go");
        assert!(report.leaks.is_empty(), "{:?}", report.leaks);
    }

    #[test]
    fn read_leak_through_intermediate_variable() {
        // Taint must flow: buffer -> asset -> return asset.
        let report = scan_source(LISTING1_JS, "js");
        assert_eq!(report.leaks.len(), 1);
    }

    #[test]
    fn implicit_marker_detected() {
        let src = r#"
func readOwn(stub shim.ChaincodeStubInterface) (string, error) {
    data, err := stub.GetPrivateData("_implicit_org_Org1MSP", "k")
    _ = data
    return "", err
}
"#;
        let report = scan_source(src, "go");
        assert!(report.implicit_pdc);
        // Returning "" is not a leak.
        assert!(!report.leaks_by(LeakKind::Read));
    }

    #[test]
    fn explicit_json_detection() {
        let mut report = ProjectReport::default();
        scan_json_file(
            r#"[{"Name":"c1","Policy":"OR('Org1MSP.member')","RequiredPeerCount":0,
                "MaxPeerCount":3,"BlockToLive":0,"MemberOnlyRead":true}]"#,
            &mut report,
        );
        assert!(report.explicit_pdc);
        assert_eq!(report.collections.len(), 1);
        assert!(!report.collections[0].has_endorsement_policy);
        assert!(report.uses_chaincode_level_policy());

        let mut custom = ProjectReport::default();
        scan_json_file(
            r#"[{"Name":"c1","Policy":"OR('Org1MSP.member')","RequiredPeerCount":0,
                "MaxPeerCount":3,"BlockToLive":0,"MemberOnlyRead":true,
                "EndorsementPolicy":{"SignaturePolicy":"AND('Org1MSP.peer','Org2MSP.peer')"}}]"#,
            &mut custom,
        );
        assert!(custom.explicit_pdc);
        assert!(!custom.uses_chaincode_level_policy());
    }

    #[test]
    fn package_json_is_not_pdc() {
        let mut report = ProjectReport::default();
        scan_json_file(
            r#"{"name":"my-app","version":"1.0.0","dependencies":{"fabric-network":"2.0"}}"#,
            &mut report,
        );
        assert!(!report.explicit_pdc);
    }

    #[test]
    fn configtx_default_policy_extracted() {
        let mut report = ProjectReport::default();
        scan_configtx(
            "Application:\n    Policies:\n        Endorsement:\n            Type: ImplicitMeta\n            Rule: \"MAJORITY Endorsement\"\n",
            &mut report,
        );
        assert_eq!(
            report.default_policy.as_deref(),
            Some("MAJORITY Endorsement")
        );
    }

    #[test]
    fn scan_project_walks_directories() {
        let dir = std::env::temp_dir().join(format!("fabric-scan-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("chaincode")).unwrap();
        fs::write(
            dir.join("collections_config.json"),
            r#"[{"Name":"c1","Policy":"OR('Org1MSP.member')","RequiredPeerCount":0,"MaxPeerCount":1,"BlockToLive":0,"MemberOnlyRead":true}]"#,
        )
        .unwrap();
        fs::write(dir.join("chaincode/cc.go"), LISTING2_GO).unwrap();
        fs::write(
            dir.join("configtx.yaml"),
            "Application:\n    Policies:\n        Endorsement:\n            Rule: \"MAJORITY Endorsement\"\n",
        )
        .unwrap();
        let report = scan_project(&dir).unwrap();
        assert!(report.explicit_pdc);
        assert!(report.uses_chaincode_level_policy());
        assert!(report.leaks_by(LeakKind::Write));
        assert_eq!(
            report.default_policy.as_deref(),
            Some("MAJORITY Endorsement")
        );
        assert!(
            report.skipped_dirs.is_empty(),
            "a fully readable tree skips nothing"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_project_errors_on_unreadable_root() {
        let missing = std::env::temp_dir().join(format!(
            "fabric-scan-missing-{}/no-such-project",
            std::process::id()
        ));
        let err = scan_project(&missing).expect_err("unreadable root must not report Ok");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn scan_corpus_propagates_project_root_errors() {
        let missing =
            std::env::temp_dir().join(format!("fabric-scan-missing-corpus-{}", std::process::id()));
        assert!(scan_corpus(&missing).is_err());
    }
}
