//! Static analyzer for Hyperledger Fabric projects, plus a synthetic
//! GitHub corpus generator — the reproduction of the paper's §V-C study.
//!
//! The paper's (Python) tool scanned 6392 Fabric projects collected from
//! GitHub, 2016–2020, classifying:
//!
//! * **explicit PDC** projects — a `.json` collection definition with the
//!   fixed keywords `Name`, `Policy`, `RequiredPeerCount`, `MaxPeerCount`,
//!   `BlockToLive`, `MemberOnlyRead`, …;
//! * **implicit PDC** projects — chaincode passing `_implicit_org_`
//!   collection names;
//! * whether explicit definitions customize the optional
//!   `EndorsementPolicy` (if not, the chaincode-level policy applies —
//!   the vulnerable default, 86.51 %);
//! * the channel default policy in `configtx.yaml` (116 of 120 found use
//!   `MAJORITY Endorsement`);
//! * PDC **leakage** in chaincode: functions that return private data
//!   through the response payload (91.67 % of explicit projects).
//!
//! This crate reimplements that scanner from scratch in Rust
//! ([`scan_project`], [`scan_corpus`]) over real file trees, with
//! from-scratch [`json`] and [`yamlish`] parsers (no external parsing
//! dependencies). Because the original GitHub corpus is not
//! redistributable, [`corpus`] synthesizes a corpus whose *ground-truth
//! marginals match the paper's published statistics*; the scanner then
//! re-derives Figs. 7–10 by actually analyzing the generated files.

pub mod corpus;
pub mod json;
pub mod lint;
pub mod report;
pub mod scan;
pub mod yamlish;

pub use corpus::{CorpusSpec, SyntheticProject};
pub use lint::{lint_corpus, lint_corpus_with_flow, subject_from_report};
pub use report::{CorpusReport, YearRow};
pub use scan::{
    dir_is_project, scan_corpus, scan_corpus_sequential, scan_corpus_with, scan_project,
    CollectionDef, LeakFinding, LeakKind, ProjectReport,
};
