//! Synthetic GitHub corpus generator.
//!
//! The paper's corpus — 6392 Fabric projects crawled from GitHub — is not
//! redistributable, so this module synthesizes one whose **ground-truth
//! marginal statistics equal the paper's published numbers** (§V-C2):
//! 252 explicit-PDC projects, 35 implicit, 31 both; 218 relying on the
//! chaincode-level policy and 34 customizing `EndorsementPolicy`; 120
//! `configtx.yaml` files among the 218, 116 of them `MAJORITY
//! Endorsement`; 231 projects with read-leaking chaincode, 20 of which
//! also write-leak.
//!
//! Each project is materialized as a real directory tree (collection
//! definition JSON, Go/JS chaincode, optional `configtx.yaml`, repository
//! metadata), and the statistics are then *re-derived by scanning the
//! files* — the generator plants structures, not answers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Ground-truth parameters of a synthetic corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Projects per year, `(year, total, pdc)`. PDC was introduced in
    /// Fabric 1.2 (2018), so earlier years must have `pdc = 0`.
    pub per_year: Vec<(u16, usize, usize)>,
    /// Explicit-only PDC projects (paper: 221).
    pub explicit_only: usize,
    /// Projects using both explicit and implicit PDC (paper: 31).
    pub both: usize,
    /// Implicit-only PDC projects (paper: 4).
    pub implicit_only: usize,
    /// Explicit projects customizing the collection `EndorsementPolicy`
    /// (paper: 34).
    pub custom_collection_policy: usize,
    /// Of the chaincode-level-policy projects: how many ship a
    /// `configtx.yaml` with `MAJORITY Endorsement` (paper: 116).
    pub configtx_majority: usize,
    /// ... and with another implicitMeta rule (paper: 4).
    pub configtx_other: usize,
    /// Explicit projects with a read-leaking chaincode function
    /// (paper: 231).
    pub read_leak: usize,
    /// Of those, how many also write-leak (paper: 20).
    pub read_and_write_leak: usize,
    /// Seed for deterministic attribute assignment.
    pub seed: u64,
}

impl Default for CorpusSpec {
    /// The paper's corpus: 6392 projects, 2016–2020.
    fn default() -> Self {
        CorpusSpec {
            // Fig. 7 gives no exact per-year totals beyond "sharp growth in
            // 2019/2020"; this split sums to 6392 with that shape, and PDC
            // counts start in 2018 and sum to 256.
            per_year: vec![
                (2016, 118, 0),
                (2017, 389, 0),
                (2018, 901, 21),
                (2019, 2192, 87),
                (2020, 2792, 148),
            ],
            explicit_only: 221,
            both: 31,
            implicit_only: 4,
            custom_collection_policy: 34,
            configtx_majority: 116,
            configtx_other: 4,
            read_leak: 231,
            read_and_write_leak: 20,
            seed: 20210701,
        }
    }
}

impl CorpusSpec {
    /// A scaled-down corpus for fast tests (~1/20 of the paper's, same
    /// structure).
    pub fn small(seed: u64) -> Self {
        CorpusSpec {
            per_year: vec![
                (2016, 6, 0),
                (2017, 19, 0),
                (2018, 45, 1),
                (2019, 110, 4),
                (2020, 140, 8),
            ],
            explicit_only: 11,
            both: 1,
            implicit_only: 1,
            custom_collection_policy: 2,
            configtx_majority: 6,
            configtx_other: 1,
            read_leak: 11,
            read_and_write_leak: 1,
            seed,
        }
    }

    /// Total project count.
    pub fn total(&self) -> usize {
        self.per_year.iter().map(|(_, t, _)| *t).sum()
    }

    /// Total PDC project count.
    pub fn total_pdc(&self) -> usize {
        self.per_year.iter().map(|(_, _, p)| *p).sum()
    }

    /// Explicit PDC project count.
    pub fn explicit(&self) -> usize {
        self.explicit_only + self.both
    }

    /// Checks internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let pdc = self.explicit_only + self.both + self.implicit_only;
        if pdc != self.total_pdc() {
            return Err(format!(
                "per-year PDC counts sum to {}, type split sums to {pdc}",
                self.total_pdc()
            ));
        }
        if pdc > self.total() {
            return Err("more PDC projects than projects".into());
        }
        if self.custom_collection_policy > self.explicit() {
            return Err("custom-policy projects exceed explicit projects".into());
        }
        let chaincode_level = self.explicit() - self.custom_collection_policy;
        if self.configtx_majority + self.configtx_other > chaincode_level {
            return Err("configtx projects exceed chaincode-level projects".into());
        }
        if self.read_leak > self.explicit() {
            return Err("read-leak projects exceed explicit projects".into());
        }
        if self.read_and_write_leak > self.read_leak {
            return Err("write-leak projects exceed read-leak projects".into());
        }
        Ok(())
    }
}

/// One generated project: name, year, and its file tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticProject {
    /// Directory name.
    pub name: String,
    /// Repository creation year.
    pub year: u16,
    /// `(relative path, content)` pairs.
    pub files: Vec<(PathBuf, String)>,
    /// Ground-truth attributes (for spot-check tests).
    pub truth: ProjectTruth,
}

/// Ground-truth attributes the generator planted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProjectTruth {
    /// Has an explicit collection definition.
    pub explicit: bool,
    /// Uses `_implicit_org_` collections.
    pub implicit: bool,
    /// Collection `EndorsementPolicy` customized.
    pub custom_policy: bool,
    /// Ships a configtx.yaml, and its rule if so.
    pub configtx_rule: Option<ConfigtxRule>,
    /// Read-leaking chaincode.
    pub read_leak: bool,
    /// Write-leaking chaincode.
    pub write_leak: bool,
}

/// Which default rule a generated configtx carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigtxRule {
    /// `MAJORITY Endorsement` (the overwhelming default).
    Majority,
    /// `ANY Endorsement` (one of the rare alternatives).
    Any,
}

impl SyntheticProject {
    /// Writes the project under `root/<name>/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_to(&self, root: &Path) -> io::Result<()> {
        let dir = root.join(&self.name);
        for (rel, content) in &self.files {
            let path = dir.join(rel);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)?;
            }
            fs::write(path, content)?;
        }
        Ok(())
    }
}

/// Generates the corpus in memory.
///
/// # Panics
///
/// Panics when the spec fails [`CorpusSpec::validate`].
pub fn generate(spec: &CorpusSpec) -> Vec<SyntheticProject> {
    spec.validate().expect("valid corpus spec");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // 1. Build the PDC attribute plans.
    let explicit_total = spec.explicit();
    let mut plans: Vec<ProjectTruth> = Vec::new();
    for i in 0..explicit_total {
        plans.push(ProjectTruth {
            explicit: true,
            implicit: i < spec.both,
            ..ProjectTruth::default()
        });
    }
    for _ in 0..spec.implicit_only {
        plans.push(ProjectTruth {
            implicit: true,
            ..ProjectTruth::default()
        });
    }

    // Custom collection policy: assign to the first N explicit plans.
    let mut explicit_indices: Vec<usize> =
        (0..plans.len()).filter(|&i| plans[i].explicit).collect();
    explicit_indices.shuffle(&mut rng);
    for &i in explicit_indices.iter().take(spec.custom_collection_policy) {
        plans[i].custom_policy = true;
    }
    // configtx among the chaincode-level (non-custom) explicit projects.
    let mut chaincode_level: Vec<usize> = explicit_indices
        .iter()
        .copied()
        .filter(|&i| !plans[i].custom_policy)
        .collect();
    chaincode_level.shuffle(&mut rng);
    for (n, &i) in chaincode_level.iter().enumerate() {
        if n < spec.configtx_majority {
            plans[i].configtx_rule = Some(ConfigtxRule::Majority);
        } else if n < spec.configtx_majority + spec.configtx_other {
            plans[i].configtx_rule = Some(ConfigtxRule::Any);
        }
    }
    // Leakage among explicit projects.
    explicit_indices.shuffle(&mut rng);
    for (n, &i) in explicit_indices.iter().enumerate() {
        if n < spec.read_leak {
            plans[i].read_leak = true;
            if n < spec.read_and_write_leak {
                plans[i].write_leak = true;
            }
        }
    }
    plans.shuffle(&mut rng);

    // 2. Assign plans to years per the PDC-per-year quota and emit.
    let mut projects = Vec::with_capacity(spec.total());
    let mut plan_iter = plans.into_iter();
    for &(year, total, pdc) in &spec.per_year {
        for i in 0..total {
            let name = format!("fabric-project-{year}-{i:04}");
            if i < pdc {
                let truth = plan_iter.next().expect("enough PDC plans");
                projects.push(emit_pdc_project(name, year, truth, &mut rng));
            } else {
                projects.push(emit_plain_project(name, year, &mut rng));
            }
        }
    }
    projects
}

/// Generates the corpus and writes every project under `root`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn materialize(spec: &CorpusSpec, root: &Path) -> io::Result<Vec<SyntheticProject>> {
    let projects = generate(spec);
    fs::create_dir_all(root)?;
    for p in &projects {
        p.write_to(root)?;
    }
    Ok(projects)
}

fn meta_file(year: u16) -> (PathBuf, String) {
    (
        PathBuf::from(".git_meta.json"),
        format!(r#"{{"created_at": "{year}-06-15T12:00:00Z", "source": "synthetic"}}"#),
    )
}

fn emit_plain_project(name: String, year: u16, rng: &mut StdRng) -> SyntheticProject {
    let mut files = vec![meta_file(year)];
    // A public-data chaincode; no PDC anywhere.
    if rng.gen_bool(0.5) {
        files.push((
            PathBuf::from("chaincode/main.go"),
            r#"package main

import "github.com/hyperledger/fabric-chaincode-go/shim"

func set(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    err := stub.PutState(args[0], []byte(args[1]))
    if err != nil {
        return "", err
    }
    return args[0], nil
}

func get(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    value, err := stub.GetState(args[0])
    if err != nil {
        return "", err
    }
    return string(value), nil
}
"#
            .to_string(),
        ));
        files.push((
            PathBuf::from("package.json"),
            format!(
                r#"{{"name": "{name}", "version": "1.0.0", "dependencies": {{"fabric-network": "^2.2.0"}}}}"#
            ),
        ));
    } else {
        files.push((
            PathBuf::from("chaincode/contract.js"),
            r#"'use strict';
const { Contract } = require('fabric-contract-api');

class PublicContract extends Contract {
    async createAsset(ctx, id, value) {
        await ctx.stub.putState(id, Buffer.from(value));
        return id;
    }

    async readAsset(ctx, id) {
        const data = await ctx.stub.getState(id);
        return data.toString();
    }
}
module.exports = PublicContract;
"#
            .to_string(),
        ));
    }
    SyntheticProject {
        name,
        year,
        files,
        truth: ProjectTruth::default(),
    }
}

fn emit_pdc_project(
    name: String,
    year: u16,
    truth: ProjectTruth,
    rng: &mut StdRng,
) -> SyntheticProject {
    let mut files = vec![meta_file(year)];
    if truth.explicit {
        files.push((
            PathBuf::from("collections_config.json"),
            collection_json(truth.custom_policy),
        ));
    }
    let go_style = rng.gen_bool(0.5);
    let chaincode = chaincode_source(&truth, go_style);
    let path = if go_style {
        "chaincode/private_cc.go"
    } else {
        "chaincode/private_contract.js"
    };
    files.push((PathBuf::from(path), chaincode));
    if let Some(rule) = truth.configtx_rule {
        files.push((PathBuf::from("configtx.yaml"), configtx_yaml(rule)));
    }
    SyntheticProject {
        name,
        year,
        files,
        truth,
    }
}

fn collection_json(custom_policy: bool) -> String {
    let policy_field = if custom_policy {
        "\n    \"EndorsementPolicy\": {\n      \"SignaturePolicy\": \"AND('Org1MSP.peer','Org2MSP.peer')\"\n    },"
    } else {
        ""
    };
    format!(
        r#"[
  {{
    "Name": "collectionPrivate",
    "Policy": "OR('Org1MSP.member','Org2MSP.member')",
    "RequiredPeerCount": 0,
    "MaxPeerCount": 3,{policy_field}
    "BlockToLive": 1000000,
    "MemberOnlyRead": true
  }}
]
"#
    )
}

fn configtx_yaml(rule: ConfigtxRule) -> String {
    let rule = match rule {
        ConfigtxRule::Majority => "MAJORITY Endorsement",
        ConfigtxRule::Any => "ANY Endorsement",
    };
    format!(
        r#"Application: &ApplicationDefaults
    Organizations:
    Policies:
        Readers:
            Type: ImplicitMeta
            Rule: "ANY Readers"
        Writers:
            Type: ImplicitMeta
            Rule: "ANY Writers"
        Endorsement:
            Type: ImplicitMeta
            Rule: "{rule}"
    Capabilities:
        V2_0: true
"#
    )
}

fn chaincode_source(truth: &ProjectTruth, go_style: bool) -> String {
    let mut src = String::new();
    if go_style {
        src.push_str(
            "package main\n\nimport \"github.com/hyperledger/fabric-chaincode-go/shim\"\n\n",
        );
        if truth.explicit {
            if truth.read_leak {
                src.push_str(
                    r#"func readPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    data, err := stub.GetPrivateData("collectionPrivate", args[0])
    if err != nil {
        return "", err
    }
    asset := string(data)
    return asset, nil
}
"#,
                );
            } else {
                src.push_str(
                    r#"func readPrivateHash(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    digest, err := stub.GetPrivateDataHash("collectionPrivate", args[0])
    if err != nil {
        return "", err
    }
    return string(digest), nil
}
"#,
                );
            }
            src.push('\n');
            if truth.write_leak {
                src.push_str(
                    r#"func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    err := stub.PutPrivateData("collectionPrivate", args[0], []byte(args[1]))
    if err != nil {
        return "", err
    }
    return args[1], nil
}
"#,
                );
            } else {
                src.push_str(
                    r#"func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    err := stub.PutPrivateData("collectionPrivate", args[0], []byte(args[1]))
    if err != nil {
        return "", err
    }
    return args[0], nil
}
"#,
                );
            }
        }
        if truth.implicit {
            src.push_str(
                r#"
func readOwnOrgData(stub shim.ChaincodeStubInterface, args []string) (string, error) {
    digest, err := stub.GetPrivateDataHash("_implicit_org_Org1MSP", args[0])
    if err != nil {
        return "", err
    }
    return string(digest), nil
}
"#,
            );
        }
    } else {
        src.push_str("'use strict';\nconst { Contract } = require('fabric-contract-api');\n\nclass PrivateContract extends Contract {\n");
        if truth.explicit {
            if truth.read_leak {
                src.push_str(
                    r#"
    async readPrivateAsset(ctx, assetId) {
        const buffer = await ctx.stub.getPrivateData('collectionPrivate', assetId);
        const asset = JSON.parse(buffer.toString());
        return asset;
    }
"#,
                );
            } else {
                src.push_str(
                    r#"
    async privateAssetExists(ctx, assetId) {
        const digest = await ctx.stub.getPrivateDataHash('collectionPrivate', assetId);
        return digest.length > 0;
    }
"#,
                );
            }
            if truth.write_leak {
                src.push_str(
                    r#"
    async setPrivateAsset(ctx, assetId, value) {
        await ctx.stub.putPrivateData('collectionPrivate', assetId, Buffer.from(value));
        return value;
    }
"#,
                );
            } else {
                src.push_str(
                    r#"
    async setPrivateAsset(ctx, assetId, value) {
        await ctx.stub.putPrivateData('collectionPrivate', assetId, Buffer.from(value));
        return assetId;
    }
"#,
                );
            }
        }
        if truth.implicit {
            src.push_str(
                r#"
    async readOwnOrgData(ctx, key) {
        const digest = await ctx.stub.getPrivateDataHash('_implicit_org_Org1MSP', key);
        return digest.length > 0;
    }
"#,
            );
        }
        src.push_str("}\nmodule.exports = PrivateContract;\n");
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_paper_numbers() {
        let spec = CorpusSpec::default();
        spec.validate().unwrap();
        assert_eq!(spec.total(), 6392);
        assert_eq!(spec.total_pdc(), 256);
        assert_eq!(spec.explicit(), 252);
        // 86.51 % of explicit projects rely on the chaincode-level policy.
        let pct = 100.0 * (spec.explicit() - spec.custom_collection_policy) as f64
            / spec.explicit() as f64;
        assert!((pct - 86.51).abs() < 0.01, "{pct}");
        // 91.67 % have leakage issues.
        let pct = 100.0 * spec.read_leak as f64 / spec.explicit() as f64;
        assert!((pct - 91.67).abs() < 0.01, "{pct}");
        // 98.44 % of PDC projects are explicit; 12.11 % both; 1.56 % only
        // implicit (Fig. 8).
        let pdc = spec.total_pdc() as f64;
        assert!((100.0 * spec.explicit() as f64 / pdc - 98.44).abs() < 0.01);
        assert!((100.0 * spec.both as f64 / pdc - 12.11).abs() < 0.01);
        assert!((100.0 * spec.implicit_only as f64 / pdc - 1.56).abs() < 0.01);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::small(5);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.total());
    }

    #[test]
    fn ground_truth_counts_match_spec() {
        let spec = CorpusSpec::small(6);
        let projects = generate(&spec);
        let explicit = projects.iter().filter(|p| p.truth.explicit).count();
        let implicit = projects.iter().filter(|p| p.truth.implicit).count();
        let both = projects
            .iter()
            .filter(|p| p.truth.explicit && p.truth.implicit)
            .count();
        let custom = projects.iter().filter(|p| p.truth.custom_policy).count();
        let read_leak = projects.iter().filter(|p| p.truth.read_leak).count();
        let write_leak = projects.iter().filter(|p| p.truth.write_leak).count();
        assert_eq!(explicit, spec.explicit());
        assert_eq!(both, spec.both);
        assert_eq!(implicit, spec.both + spec.implicit_only);
        assert_eq!(custom, spec.custom_collection_policy);
        assert_eq!(read_leak, spec.read_leak);
        assert_eq!(write_leak, spec.read_and_write_leak);
        // PDC projects only exist from 2018 on.
        assert!(projects
            .iter()
            .filter(|p| p.truth.explicit || p.truth.implicit)
            .all(|p| p.year >= 2018));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut bad = CorpusSpec::small(1);
        bad.read_and_write_leak = bad.read_leak + 1;
        assert!(bad.validate().is_err());

        let mut bad = CorpusSpec::small(1);
        bad.custom_collection_policy = bad.explicit() + 1;
        assert!(bad.validate().is_err());

        let mut bad = CorpusSpec::small(1);
        bad.per_year[4].2 += 1;
        assert!(bad.validate().is_err());
    }
}
