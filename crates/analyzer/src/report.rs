//! Aggregation of scan results into the paper's Figs. 7–10.

use crate::scan::{LeakKind, ProjectReport};
use std::fmt::Write as _;

/// Per-year totals (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YearRow {
    /// Calendar year.
    pub year: u16,
    /// Projects created that year.
    pub total: usize,
    /// PDC-using projects created that year.
    pub pdc: usize,
}

/// The corpus-wide statistics re-derived by scanning project trees.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusReport {
    /// Fig. 7: growth across years.
    pub years: Vec<YearRow>,
    /// Total projects scanned.
    pub total: usize,
    /// Projects with explicit PDC definitions.
    pub explicit: usize,
    /// Projects using implicit PDC.
    pub implicit: usize,
    /// Projects using both.
    pub both: usize,
    /// Explicit projects relying on the chaincode-level policy.
    pub chaincode_level_policy: usize,
    /// Explicit projects customizing the collection policy.
    pub custom_collection_policy: usize,
    /// `configtx.yaml` files found among chaincode-level projects.
    pub configtx_found: usize,
    /// ... of which `MAJORITY Endorsement`.
    pub configtx_majority: usize,
    /// Explicit projects with read-leaking chaincode.
    pub read_leak: usize,
    /// ... of which also write-leaking.
    pub read_and_write_leak: usize,
}

impl CorpusReport {
    /// Aggregates individual project reports.
    pub fn from_reports(reports: &[ProjectReport]) -> Self {
        let mut years: Vec<YearRow> = Vec::new();
        for r in reports {
            let Some(year) = r.year else { continue };
            match years.iter_mut().find(|y| y.year == year) {
                Some(row) => {
                    row.total += 1;
                    row.pdc += usize::from(r.uses_pdc());
                }
                None => years.push(YearRow {
                    year,
                    total: 1,
                    pdc: usize::from(r.uses_pdc()),
                }),
            }
        }
        years.sort_by_key(|y| y.year);

        let explicit = reports.iter().filter(|r| r.explicit_pdc).count();
        let implicit = reports.iter().filter(|r| r.implicit_pdc).count();
        let both = reports
            .iter()
            .filter(|r| r.explicit_pdc && r.implicit_pdc)
            .count();
        let chaincode_level = reports
            .iter()
            .filter(|r| r.uses_chaincode_level_policy())
            .count();
        let custom = explicit - chaincode_level;
        let configtx_found = reports
            .iter()
            .filter(|r| r.uses_chaincode_level_policy() && r.default_policy.is_some())
            .count();
        let configtx_majority = reports
            .iter()
            .filter(|r| {
                r.uses_chaincode_level_policy()
                    && r.default_policy.as_deref() == Some("MAJORITY Endorsement")
            })
            .count();
        let read_leak = reports
            .iter()
            .filter(|r| r.explicit_pdc && r.leaks_by(LeakKind::Read))
            .count();
        let read_and_write_leak = reports
            .iter()
            .filter(|r| r.explicit_pdc && r.leaks_by(LeakKind::Read) && r.leaks_by(LeakKind::Write))
            .count();

        CorpusReport {
            years,
            total: reports.len(),
            explicit,
            implicit,
            both,
            chaincode_level_policy: chaincode_level,
            custom_collection_policy: custom,
            configtx_found,
            configtx_majority,
            read_leak,
            read_and_write_leak,
        }
    }

    /// Total PDC projects (explicit ∪ implicit).
    pub fn total_pdc(&self) -> usize {
        self.explicit + self.implicit - self.both
    }

    /// Fig. 9's headline: fraction of explicit projects on the
    /// chaincode-level policy (the paper reports 86.51 %).
    pub fn pct_chaincode_level(&self) -> f64 {
        percentage(self.chaincode_level_policy, self.explicit)
    }

    /// Fig. 10's headline: fraction of explicit projects with leakage
    /// issues (the paper reports 91.67 %).
    pub fn pct_leaky(&self) -> f64 {
        percentage(self.read_leak, self.explicit)
    }

    /// Fig. 7 as text: projects across years.
    pub fn render_fig7(&self) -> String {
        let mut out = String::from("Fig. 7 — Projects across years\n");
        let max = self.years.iter().map(|y| y.total).max().unwrap_or(1).max(1);
        for row in &self.years {
            let bar = "#".repeat((row.total * 40).div_ceil(max));
            let _ = writeln!(
                out,
                "{:>4}: {:>5} projects ({:>4} PDC)  {bar}",
                row.year, row.total, row.pdc
            );
        }
        let _ = writeln!(
            out,
            "total: {} projects, {} PDC",
            self.total,
            self.total_pdc()
        );
        out
    }

    /// Fig. 8 as text: PDC definition type distribution.
    pub fn render_fig8(&self) -> String {
        let pdc = self.total_pdc();
        format!(
            "Fig. 8 — PDC definition types ({pdc} PDC projects)\n\
             explicit (any):   {:>4} ({:.2} %)\n\
             both:             {:>4} ({:.2} %)\n\
             implicit only:    {:>4} ({:.2} %)\n",
            self.explicit,
            percentage(self.explicit, pdc),
            self.both,
            percentage(self.both, pdc),
            pdc - self.explicit,
            percentage(pdc - self.explicit, pdc),
        )
    }

    /// Fig. 9 as text: endorsement policy of explicit PDC projects.
    pub fn render_fig9(&self) -> String {
        format!(
            "Fig. 9 — Endorsement policy of {} explicit PDC projects\n\
             chaincode-level (default): {:>4} ({:.2} %)\n\
             collection-level (custom): {:>4} ({:.2} %)\n\
             configtx.yaml found:       {:>4}, of which MAJORITY Endorsement: {} ({:.2} %)\n",
            self.explicit,
            self.chaincode_level_policy,
            self.pct_chaincode_level(),
            self.custom_collection_policy,
            percentage(self.custom_collection_policy, self.explicit),
            self.configtx_found,
            self.configtx_majority,
            percentage(self.configtx_majority, self.configtx_found),
        )
    }

    /// Fig. 10 as text: PDC leakage issues.
    pub fn render_fig10(&self) -> String {
        format!(
            "Fig. 10 — PDC leakage among {} explicit PDC projects\n\
             leaky (read service returns PDC): {:>4} ({:.2} %)\n\
             ... also write-leaking:           {:>4}\n\
             not leaky:                        {:>4}\n",
            self.explicit,
            self.read_leak,
            self.pct_leaky(),
            self.read_and_write_leak,
            self.explicit - self.read_leak,
        )
    }
}

impl CorpusReport {
    /// Serializes the report as a JSON document (machine-readable output
    /// of the `analyze` CLI).
    pub fn to_json(&self) -> String {
        let years: Vec<String> = self
            .years
            .iter()
            .map(|y| {
                format!(
                    r#"{{"year":{},"total":{},"pdc":{}}}"#,
                    y.year, y.total, y.pdc
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"total\": {},\n",
                "  \"years\": [{}],\n",
                "  \"explicit\": {},\n",
                "  \"implicit\": {},\n",
                "  \"both\": {},\n",
                "  \"total_pdc\": {},\n",
                "  \"chaincode_level_policy\": {},\n",
                "  \"custom_collection_policy\": {},\n",
                "  \"configtx_found\": {},\n",
                "  \"configtx_majority\": {},\n",
                "  \"read_leak\": {},\n",
                "  \"read_and_write_leak\": {},\n",
                "  \"pct_chaincode_level\": {:.2},\n",
                "  \"pct_leaky\": {:.2}\n",
                "}}"
            ),
            self.total,
            years.join(","),
            self.explicit,
            self.implicit,
            self.both,
            self.total_pdc(),
            self.chaincode_level_policy,
            self.custom_collection_policy,
            self.configtx_found,
            self.configtx_majority,
            self.read_leak,
            self.read_and_write_leak,
            self.pct_chaincode_level(),
            self.pct_leaky(),
        )
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusSpec};
    use crate::scan::scan_corpus;
    use std::fs;

    /// End-to-end: generate a small corpus on disk, scan it with the real
    /// scanner, and check the aggregate equals the generator's ground
    /// truth. This is the (scaled) §V-C experiment.
    #[test]
    fn scanner_rederives_ground_truth() {
        let spec = CorpusSpec::small(9);
        let root = std::env::temp_dir().join(format!("fabric-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let projects = crate::corpus::materialize(&spec, &root).unwrap();
        assert_eq!(projects.len(), spec.total());

        let reports = scan_corpus(&root).unwrap();
        assert_eq!(reports.len(), spec.total());
        let agg = CorpusReport::from_reports(&reports);

        assert_eq!(agg.total, spec.total());
        assert_eq!(agg.explicit, spec.explicit());
        assert_eq!(agg.both, spec.both);
        assert_eq!(agg.implicit, spec.both + spec.implicit_only);
        assert_eq!(agg.total_pdc(), spec.total_pdc());
        assert_eq!(agg.custom_collection_policy, spec.custom_collection_policy);
        assert_eq!(
            agg.chaincode_level_policy,
            spec.explicit() - spec.custom_collection_policy
        );
        assert_eq!(
            agg.configtx_found,
            spec.configtx_majority + spec.configtx_other
        );
        assert_eq!(agg.configtx_majority, spec.configtx_majority);
        assert_eq!(agg.read_leak, spec.read_leak);
        assert_eq!(agg.read_and_write_leak, spec.read_and_write_leak);

        // Per-year rows match the spec.
        for (year, total, pdc) in &spec.per_year {
            let row = agg.years.iter().find(|y| y.year == *year).unwrap();
            assert_eq!(row.total, *total, "year {year}");
            assert_eq!(row.pdc, *pdc, "year {year}");
        }

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn json_report_parses_back() {
        let agg = CorpusReport {
            years: vec![YearRow {
                year: 2020,
                total: 10,
                pdc: 2,
            }],
            total: 10,
            explicit: 2,
            implicit: 1,
            both: 1,
            chaincode_level_policy: 1,
            custom_collection_policy: 1,
            configtx_found: 1,
            configtx_majority: 1,
            read_leak: 2,
            read_and_write_leak: 0,
        };
        let doc = crate::json::parse(&agg.to_json()).expect("valid json");
        assert_eq!(doc.get("total"), Some(&crate::json::Value::Number(10.0)));
        assert_eq!(
            doc.get("pct_leaky"),
            Some(&crate::json::Value::Number(100.0))
        );
        let years = doc.get("years").unwrap().as_array().unwrap();
        assert_eq!(years.len(), 1);
    }

    #[test]
    fn renders_are_nonempty_and_labeled() {
        let spec = CorpusSpec::small(10);
        let projects = generate(&spec);
        // Build reports from truth without disk I/O for the render test.
        let reports: Vec<ProjectReport> = projects
            .iter()
            .map(|p| {
                let mut r = ProjectReport {
                    year: Some(p.year),
                    explicit_pdc: p.truth.explicit,
                    implicit_pdc: p.truth.implicit,
                    ..ProjectReport::default()
                };
                if p.truth.explicit {
                    r.collections.push(crate::scan::CollectionDef {
                        name: "c".into(),
                        has_endorsement_policy: p.truth.custom_policy,
                        ..crate::scan::CollectionDef::default()
                    });
                }
                r
            })
            .collect();
        let agg = CorpusReport::from_reports(&reports);
        assert!(agg.render_fig7().contains("Fig. 7"));
        assert!(agg.render_fig8().contains("Fig. 8"));
        assert!(agg.render_fig9().contains("Fig. 9"));
        assert!(agg.render_fig10().contains("Fig. 10"));
    }
}
