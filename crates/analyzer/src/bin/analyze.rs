//! `analyze` — the static-analysis CLI (the Rust port of the paper's
//! Python tool).
//!
//! ```console
//! $ analyze scan <dir> [--json]            # scan a corpus directory
//! $ analyze project <dir> [--json]         # detail scan of one project
//! $ analyze lint <dir> [--json] [--sarif <path>] [--flow]
//!                                          # scan + run the PDC linter
//!                                          # (--flow adds taint analysis)
//! $ analyze generate <dir> [--full]        # materialize a synthetic corpus
//! ```
//!
//! Unknown flags are errors: a typo like `--jsno` fails loudly instead of
//! silently changing the output format.

use fabric_analyzer::{
    corpus, dir_is_project, lint_corpus, scan_corpus, scan_project, CorpusReport, CorpusSpec,
};
use fabric_lint::render;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage:
  analyze scan <corpus-dir> [--json]
  analyze project <project-dir> [--json]
  analyze lint <dir> [--json] [--sarif <path>] [--flow]
  analyze generate <out-dir> [--full]";

/// Parsed command line: positionals plus the accepted flags.
struct Cli {
    command: String,
    dir: PathBuf,
    json: bool,
    full: bool,
    flow: bool,
    sarif: Option<PathBuf>,
}

impl Cli {
    /// Parses the argument vector; any unknown flag or missing value is
    /// an `Err` with a message.
    fn parse(args: &[String]) -> Result<Cli, String> {
        let mut positionals: Vec<&str> = Vec::new();
        let mut json = false;
        let mut full = false;
        let mut flow = false;
        let mut sarif = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => json = true,
                "--full" => full = true,
                "--flow" => flow = true,
                "--sarif" => {
                    let path = it
                        .next()
                        .ok_or_else(|| "--sarif requires an output path".to_string())?;
                    sarif = Some(PathBuf::from(path));
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag: {flag}"));
                }
                positional => positionals.push(positional),
            }
        }
        let [command, dir] = positionals[..] else {
            return Err(format!(
                "expected exactly a command and a directory, got {} positional argument(s)",
                positionals.len()
            ));
        };
        let allowed: &[&str] = match command {
            "scan" | "project" => &["--json"],
            "lint" => &["--json", "--sarif", "--flow"],
            "generate" => &["--full"],
            other => return Err(format!("unknown command: {other}")),
        };
        if json && !allowed.contains(&"--json") {
            return Err(format!("--json is not accepted by `{command}`"));
        }
        if full && !allowed.contains(&"--full") {
            return Err(format!("--full is not accepted by `{command}`"));
        }
        if sarif.is_some() && !allowed.contains(&"--sarif") {
            return Err(format!("--sarif is not accepted by `{command}`"));
        }
        if flow && !allowed.contains(&"--flow") {
            return Err(format!("--flow is not accepted by `{command}`"));
        }
        Ok(Cli {
            command: command.to_string(),
            dir: PathBuf::from(dir),
            json,
            full,
            flow,
            sarif,
        })
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cli.command.as_str() {
        "scan" => cmd_scan(&cli.dir, cli.json),
        "project" => cmd_project(&cli.dir, cli.json),
        "lint" => cmd_lint(&cli.dir, cli.json, cli.flow, cli.sarif.as_deref()),
        "generate" => cmd_generate(&cli.dir, cli.full),
        _ => unreachable!("validated by Cli::parse"),
    }
}

fn cmd_scan(dir: &Path, json: bool) -> ExitCode {
    let reports = match scan_corpus(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let agg = CorpusReport::from_reports(&reports);
    if json {
        println!("{}", agg.to_json());
    } else {
        println!("{}", agg.render_fig7());
        println!("{}", agg.render_fig8());
        println!("{}", agg.render_fig9());
        println!("{}", agg.render_fig10());
    }
    skipped_dirs_exit(&reports, json)
}

/// Shared tail for scan-backed commands: warn about every directory the
/// walk could not read, and — under `--json`, where the output feeds
/// aggregation pipelines — refuse to exit 0 for an undercounting report.
/// Human-readable output stays exit 0: the warnings are on stderr.
fn skipped_dirs_exit(reports: &[fabric_analyzer::ProjectReport], json: bool) -> ExitCode {
    let mut skipped = 0usize;
    for report in reports {
        for dir in &report.skipped_dirs {
            skipped += 1;
            eprintln!("warning: skipped unreadable directory {}", dir.display());
        }
    }
    if skipped > 0 && json {
        eprintln!("error: {skipped} director(ies) were unscannable; JSON aggregation is partial");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_project(dir: &Path, json: bool) -> ExitCode {
    let report = match scan_project(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", project_json(&report));
        return skipped_dirs_exit(std::slice::from_ref(&report), true);
    }
    println!("project: {}", report.path.display());
    println!("explicit PDC:  {}", report.explicit_pdc);
    println!("implicit PDC:  {}", report.implicit_pdc);
    for c in &report.collections {
        println!(
            "  collection {:<24} EndorsementPolicy customized: {}",
            c.name, c.has_endorsement_policy
        );
    }
    match &report.default_policy {
        Some(p) => println!("configtx default policy: {p}"),
        None => println!("configtx default policy: (no configtx.yaml found)"),
    }
    if report.leaks.is_empty() {
        println!("leaks: none detected");
    } else {
        for l in &report.leaks {
            println!("  LEAK [{}] {} in {}", l.kind, l.function, l.file.display());
        }
    }
    if report.explicit_pdc && report.uses_chaincode_level_policy() {
        println!(
            "WARNING: PDC transactions are validated by the chaincode-level policy — \
             potentially vulnerable to fake PDC results injection (ICDCS'21)"
        );
    }
    skipped_dirs_exit(std::slice::from_ref(&report), false)
}

/// JSON detail report for one project (hand-rolled, like the rest of the
/// workspace's encoders).
fn project_json(report: &fabric_analyzer::ProjectReport) -> String {
    use fabric_analyzer::json::escape;
    let collections: Vec<String> = report
        .collections
        .iter()
        .map(|c| {
            format!(
                "{{\"name\": \"{}\", \"endorsement_policy_customized\": {}}}",
                escape(&c.name),
                c.has_endorsement_policy
            )
        })
        .collect();
    let leaks: Vec<String> = report
        .leaks
        .iter()
        .map(|l| {
            format!(
                "{{\"file\": \"{}\", \"function\": \"{}\", \"kind\": \"{}\"}}",
                escape(&l.file.to_string_lossy()),
                escape(&l.function),
                l.kind
            )
        })
        .collect();
    let skipped: Vec<String> = report
        .skipped_dirs
        .iter()
        .map(|d| format!("\"{}\"", escape(&d.to_string_lossy())))
        .collect();
    format!(
        "{{\n  \"path\": \"{}\",\n  \"explicit_pdc\": {},\n  \"implicit_pdc\": {},\n  \
         \"collections\": [{}],\n  \"default_policy\": {},\n  \"leaks\": [{}],\n  \
         \"skipped_dirs\": [{}]\n}}",
        escape(&report.path.to_string_lossy()),
        report.explicit_pdc,
        report.implicit_pdc,
        collections.join(", "),
        report
            .default_policy
            .as_deref()
            .map_or("null".to_string(), |p| format!("\"{}\"", escape(p))),
        leaks.join(", "),
        skipped.join(", "),
    )
}

fn cmd_lint(dir: &Path, json: bool, flow: bool, sarif: Option<&Path>) -> ExitCode {
    // A directory with scannable files at its top level is one project
    // (even when it has subdirectories like `chaincode/`); a corpus root
    // holds only project subdirectories.
    let reports = match dir_is_project(dir) {
        Ok(true) => scan_project(dir).map(|r| vec![r]),
        Ok(false) => scan_corpus(dir).and_then(|reports| {
            if reports.is_empty() {
                scan_project(dir).map(|r| vec![r])
            } else {
                Ok(reports)
            }
        }),
        Err(e) => Err(e),
    };
    let reports = match reports {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    for report in &reports {
        for skipped in &report.skipped_dirs {
            eprintln!(
                "warning: skipped unreadable directory {}",
                skipped.display()
            );
        }
    }
    let findings = if flow {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        fabric_analyzer::lint_corpus_with_flow(&reports, workers)
    } else {
        lint_corpus(&reports)
    };
    if let Some(path) = sarif {
        if let Err(e) = std::fs::write(path, render::render_sarif(&findings)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("SARIF report written to {}", path.display());
    }
    if json {
        print!("{}", render::render_json(&findings));
    } else {
        print!("{}", render::render_text(&findings));
    }
    if findings
        .iter()
        .any(|f| f.severity == fabric_lint::Severity::Error)
    {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_generate(dir: &Path, full: bool) -> ExitCode {
    let spec = if full {
        CorpusSpec::default()
    } else {
        CorpusSpec::small(42)
    };
    match corpus::materialize(&spec, dir) {
        Ok(projects) => {
            println!(
                "materialized {} synthetic projects under {}",
                projects.len(),
                dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
