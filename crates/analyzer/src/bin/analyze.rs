//! `analyze` — the static-analysis CLI (the Rust port of the paper's
//! Python tool).
//!
//! ```console
//! $ analyze scan <dir> [--json]      # scan a corpus directory
//! $ analyze project <dir>            # detail scan of one project
//! $ analyze generate <dir> [--full]  # materialize a synthetic corpus
//! ```

use fabric_analyzer::{corpus, scan_corpus, scan_project, CorpusReport, CorpusSpec};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let command = positional.next().map(String::as_str);
    let dir = positional.next().map(String::as_str);
    let json = args.iter().any(|a| a == "--json");
    let full = args.iter().any(|a| a == "--full");

    match (command, dir) {
        (Some("scan"), Some(dir)) => cmd_scan(Path::new(dir), json),
        (Some("project"), Some(dir)) => cmd_project(Path::new(dir)),
        (Some("generate"), Some(dir)) => cmd_generate(Path::new(dir), full),
        _ => {
            eprintln!(
                "usage:\n  analyze scan <corpus-dir> [--json]\n  analyze project <project-dir>\n  analyze generate <out-dir> [--full]"
            );
            ExitCode::FAILURE
        }
    }
}

fn cmd_scan(dir: &Path, json: bool) -> ExitCode {
    let reports = match scan_corpus(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let agg = CorpusReport::from_reports(&reports);
    if json {
        println!("{}", agg.to_json());
    } else {
        println!("{}", agg.render_fig7());
        println!("{}", agg.render_fig8());
        println!("{}", agg.render_fig9());
        println!("{}", agg.render_fig10());
    }
    ExitCode::SUCCESS
}

fn cmd_project(dir: &Path) -> ExitCode {
    let report = match scan_project(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    println!("project: {}", report.path.display());
    println!("explicit PDC:  {}", report.explicit_pdc);
    println!("implicit PDC:  {}", report.implicit_pdc);
    for c in &report.collections {
        println!(
            "  collection {:<24} EndorsementPolicy customized: {}",
            c.name, c.has_endorsement_policy
        );
    }
    match &report.default_policy {
        Some(p) => println!("configtx default policy: {p}"),
        None => println!("configtx default policy: (no configtx.yaml found)"),
    }
    if report.leaks.is_empty() {
        println!("leaks: none detected");
    } else {
        for l in &report.leaks {
            println!(
                "  LEAK [{}] {} in {}",
                l.kind,
                l.function,
                l.file.display()
            );
        }
    }
    if report.explicit_pdc && report.uses_chaincode_level_policy() {
        println!(
            "WARNING: PDC transactions are validated by the chaincode-level policy — \
             potentially vulnerable to fake PDC results injection (ICDCS'21)"
        );
    }
    ExitCode::SUCCESS
}

fn cmd_generate(dir: &Path, full: bool) -> ExitCode {
    let spec = if full {
        CorpusSpec::default()
    } else {
        CorpusSpec::small(42)
    };
    match corpus::materialize(&spec, dir) {
        Ok(projects) => {
            println!(
                "materialized {} synthetic projects under {}",
                projects.len(),
                dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
