//! Policy AST and evaluation.

use crate::parser::{self, ParsePolicyError};
use fabric_types::{Identity, OrgId, Role};
use std::collections::BTreeMap;
use std::fmt;

/// The role requirement of a principal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrincipalRole {
    /// Matches any role of the organization (`Org.member`).
    Member,
    /// Matches one specific role (`Org.peer`, `Org.client`, ...).
    Exact(Role),
}

impl fmt::Display for PrincipalRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrincipalRole::Member => f.write_str("member"),
            PrincipalRole::Exact(r) => write!(f, "{r}"),
        }
    }
}

/// A principal: an organization plus a role requirement, e.g. `Org1MSP.peer`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Principal {
    /// Required organization.
    pub org: OrgId,
    /// Required role.
    pub role: PrincipalRole,
}

impl Principal {
    /// Creates a principal.
    pub fn new(org: impl Into<OrgId>, role: PrincipalRole) -> Self {
        Principal {
            org: org.into(),
            role,
        }
    }

    /// Whether `identity` satisfies this principal.
    pub fn matches(&self, identity: &Identity) -> bool {
        if identity.org != self.org {
            return false;
        }
        match self.role {
            PrincipalRole::Member => true,
            PrincipalRole::Exact(role) => identity.role == role,
        }
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}.{}'", self.org, self.role)
    }
}

/// A signature policy: a boolean expression over principals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignaturePolicy {
    /// A single principal requirement.
    Principal(Principal),
    /// All sub-policies must be satisfied by *distinct* endorsements.
    And(Vec<SignaturePolicy>),
    /// At least one sub-policy must be satisfied.
    Or(Vec<SignaturePolicy>),
    /// At least `n` of the sub-policies must be satisfied by distinct
    /// endorsements (`OutOf(n, ...)`, the paper's `NOutOf`).
    OutOf(u32, Vec<SignaturePolicy>),
}

impl SignaturePolicy {
    /// Parses a signature policy expression.
    ///
    /// Accepts Fabric spelling (`OutOf(2,'Org1MSP.peer',...)`, quoted
    /// principals) and the paper's spelling (`2OutOf(org1.peer,...)`,
    /// unquoted principals).
    ///
    /// # Errors
    ///
    /// Returns [`ParsePolicyError`] on malformed expressions.
    pub fn parse(expr: &str) -> Result<Self, ParsePolicyError> {
        parser::parse_signature_policy(expr)
    }

    /// Whether the distinct identities in `endorsers` satisfy this policy.
    ///
    /// Duplicate identities (same public key) count once, as in Fabric.
    /// Matching is exact: one endorsement satisfies at most one principal
    /// requirement, found by backtracking search.
    pub fn satisfied_by(&self, endorsers: &[Identity]) -> bool {
        let refs: Vec<&Identity> = endorsers.iter().collect();
        self.satisfied_by_refs(&refs)
    }

    /// [`satisfied_by`](Self::satisfied_by) over borrowed identities, so
    /// per-transaction hot paths can evaluate policies without cloning
    /// each endorser identity out of its endorsement first.
    pub fn satisfied_by_refs(&self, endorsers: &[&Identity]) -> bool {
        let mut unique: Vec<&Identity> = Vec::new();
        for &e in endorsers {
            if !unique.iter().any(|u| u.public_key == e.public_key) {
                unique.push(e);
            }
        }
        let mut used = vec![false; unique.len()];
        satisfy_all(&[self], &unique, &mut used)
    }

    /// Whether the policy could be satisfied using only identities from
    /// `allowed` organizations, assuming each of them can produce
    /// arbitrarily many distinct identities of every role.
    ///
    /// This is the static-analysis counterpart of
    /// [`satisfied_by`](Self::satisfied_by): rather than checking one
    /// concrete endorsement set, it asks if *some* endorsement set drawn
    /// from `allowed` exists. With unlimited identities per organization,
    /// `AND`/`OutOf` distinctness never binds, so the evaluation is a
    /// simple monotone recursion. The linter uses it to decide whether an
    /// endorsement policy is reachable by collection non-members (the
    /// paper's Use Cases 1 and 2) and, with `allowed` set to all channel
    /// organizations, whether the policy is satisfiable at all.
    pub fn satisfiable_within(&self, allowed: &[OrgId]) -> bool {
        match self {
            SignaturePolicy::Principal(p) => allowed.contains(&p.org),
            SignaturePolicy::And(children) => {
                children.iter().all(|c| c.satisfiable_within(allowed))
            }
            SignaturePolicy::Or(children) => children.iter().any(|c| c.satisfiable_within(allowed)),
            SignaturePolicy::OutOf(n, children) => {
                children
                    .iter()
                    .filter(|c| c.satisfiable_within(allowed))
                    .count()
                    >= *n as usize
            }
        }
    }

    /// Whether no endorsement set can ever satisfy the policy — e.g.
    /// `OutOf(3, a, b)` demanding more branches than exist.
    pub fn is_unsatisfiable(&self) -> bool {
        !self.satisfiable_within(&self.organizations())
    }

    /// All organizations mentioned anywhere in the policy.
    pub fn organizations(&self) -> Vec<OrgId> {
        let mut orgs = Vec::new();
        self.collect_orgs(&mut orgs);
        orgs.sort();
        orgs.dedup();
        orgs
    }

    fn collect_orgs(&self, out: &mut Vec<OrgId>) {
        match self {
            SignaturePolicy::Principal(p) => out.push(p.org.clone()),
            SignaturePolicy::And(children)
            | SignaturePolicy::Or(children)
            | SignaturePolicy::OutOf(_, children) => {
                for c in children {
                    c.collect_orgs(out);
                }
            }
        }
    }
}

impl fmt::Display for SignaturePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, children: &[SignaturePolicy]) -> fmt::Result {
            for (i, c) in children.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{c}")?;
            }
            Ok(())
        }
        match self {
            SignaturePolicy::Principal(p) => write!(f, "{p}"),
            SignaturePolicy::And(c) => {
                f.write_str("AND(")?;
                join(f, c)?;
                f.write_str(")")
            }
            SignaturePolicy::Or(c) => {
                f.write_str("OR(")?;
                join(f, c)?;
                f.write_str(")")
            }
            SignaturePolicy::OutOf(n, c) => {
                write!(f, "OutOf({n},")?;
                join(f, c)?;
                f.write_str(")")
            }
        }
    }
}

/// Backtracking satisfaction of a conjunction of policy goals using each
/// identity at most once.
fn satisfy_all(goals: &[&SignaturePolicy], ids: &[&Identity], used: &mut Vec<bool>) -> bool {
    let Some((first, rest)) = goals.split_first() else {
        return true;
    };
    match first {
        SignaturePolicy::Principal(p) => {
            for i in 0..ids.len() {
                if !used[i] && p.matches(ids[i]) {
                    used[i] = true;
                    if satisfy_all(rest, ids, used) {
                        return true;
                    }
                    used[i] = false;
                }
            }
            false
        }
        SignaturePolicy::And(children) => {
            let mut new_goals: Vec<&SignaturePolicy> = children.iter().collect();
            new_goals.extend_from_slice(rest);
            satisfy_all(&new_goals, ids, used)
        }
        SignaturePolicy::Or(children) => children.iter().any(|c| {
            let mut new_goals: Vec<&SignaturePolicy> = vec![c];
            new_goals.extend_from_slice(rest);
            satisfy_all(&new_goals, ids, used)
        }),
        SignaturePolicy::OutOf(n, children) => {
            let n = *n as usize;
            if n == 0 {
                return satisfy_all(rest, ids, used);
            }
            if n > children.len() {
                return false;
            }
            // Try every n-combination of children (sizes are small in
            // practice; policies rarely exceed a handful of branches).
            combinations(children.len(), n).into_iter().any(|combo| {
                let mut new_goals: Vec<&SignaturePolicy> =
                    combo.iter().map(|&i| &children[i]).collect();
                new_goals.extend_from_slice(rest);
                satisfy_all(&new_goals, ids, used)
            })
        }
    }
}

/// All `k`-combinations of `0..n`, in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..k).collect();
    loop {
        out.push(combo.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if combo[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        combo[i] += 1;
        for j in i + 1..k {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

/// The combination rule of an implicitMeta policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplicitMetaRule {
    /// Any one organization's sub-policy suffices.
    Any,
    /// Every organization's sub-policy must be satisfied.
    All,
    /// A strict majority of organizations' sub-policies must be satisfied
    /// (Eq. 1 in the paper).
    Majority,
}

impl fmt::Display for ImplicitMetaRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ImplicitMetaRule::Any => "ANY",
            ImplicitMetaRule::All => "ALL",
            ImplicitMetaRule::Majority => "MAJORITY",
        };
        f.write_str(s)
    }
}

/// An implicitMeta policy such as `MAJORITY Endorsement`: combines the
/// result of each participating organization's named sub-policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplicitMetaPolicy {
    /// Combination rule.
    pub rule: ImplicitMetaRule,
    /// Name of the per-organization sub-policy (usually `Endorsement`).
    pub sub_policy: String,
}

impl ImplicitMetaPolicy {
    /// Parses expressions like `"MAJORITY Endorsement"`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePolicyError`] on malformed expressions.
    pub fn parse(expr: &str) -> Result<Self, ParsePolicyError> {
        parser::parse_implicit_meta(expr)
    }

    /// Evaluates the policy: each organization's sub-policy is evaluated
    /// against `endorsers`, then the boolean results are combined by the
    /// rule. `org_policies` maps each participating organization to its
    /// sub-policy (each org's `Endorsement` policy in practice).
    pub fn evaluate(
        &self,
        org_policies: &BTreeMap<OrgId, SignaturePolicy>,
        endorsers: &[Identity],
    ) -> bool {
        let refs: Vec<&Identity> = endorsers.iter().collect();
        self.evaluate_refs(org_policies, &refs)
    }

    /// [`evaluate`](Self::evaluate) over borrowed identities (see
    /// [`SignaturePolicy::satisfied_by_refs`]).
    pub fn evaluate_refs(
        &self,
        org_policies: &BTreeMap<OrgId, SignaturePolicy>,
        endorsers: &[&Identity],
    ) -> bool {
        let n = org_policies.len();
        if n == 0 {
            return false;
        }
        let satisfied = org_policies
            .values()
            .filter(|p| p.satisfied_by_refs(endorsers))
            .count();
        match self.rule {
            ImplicitMetaRule::Any => satisfied >= 1,
            ImplicitMetaRule::All => satisfied == n,
            ImplicitMetaRule::Majority => satisfied > n / 2,
        }
    }
}

impl fmt::Display for ImplicitMetaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.rule, self.sub_policy)
    }
}

/// Any endorsement policy: signature or implicitMeta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    /// An explicit signature policy.
    Signature(SignaturePolicy),
    /// An implicitMeta policy over per-org sub-policies.
    ImplicitMeta(ImplicitMetaPolicy),
}

impl Policy {
    /// Parses either policy family, trying implicitMeta first
    /// (`ANY/ALL/MAJORITY name`) then signature expressions.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePolicyError`] when neither family parses.
    pub fn parse(expr: &str) -> Result<Self, ParsePolicyError> {
        let trimmed = expr.trim();
        if let Ok(meta) = ImplicitMetaPolicy::parse(trimmed) {
            return Ok(Policy::ImplicitMeta(meta));
        }
        SignaturePolicy::parse(trimmed).map(Policy::Signature)
    }

    /// Evaluates the policy against an endorser set, resolving implicitMeta
    /// sub-policies through `org_policies`.
    pub fn evaluate(
        &self,
        org_policies: &BTreeMap<OrgId, SignaturePolicy>,
        endorsers: &[Identity],
    ) -> bool {
        match self {
            Policy::Signature(p) => p.satisfied_by(endorsers),
            Policy::ImplicitMeta(p) => p.evaluate(org_policies, endorsers),
        }
    }

    /// [`evaluate`](Self::evaluate) over borrowed identities (see
    /// [`SignaturePolicy::satisfied_by_refs`]).
    pub fn evaluate_refs(
        &self,
        org_policies: &BTreeMap<OrgId, SignaturePolicy>,
        endorsers: &[&Identity],
    ) -> bool {
        match self {
            Policy::Signature(p) => p.satisfied_by_refs(endorsers),
            Policy::ImplicitMeta(p) => p.evaluate_refs(org_policies, endorsers),
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Signature(p) => write!(f, "{p}"),
            Policy::ImplicitMeta(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::Keypair;

    fn id(org: &str, role: Role, seed: u64) -> Identity {
        Identity::new(org, role, Keypair::generate_from_seed(seed).public_key())
    }

    fn peer(org: &str, seed: u64) -> Identity {
        id(org, Role::Peer, seed)
    }

    #[test]
    fn principal_matching() {
        let p = Principal::new("Org1MSP", PrincipalRole::Exact(Role::Peer));
        assert!(p.matches(&peer("Org1MSP", 1)));
        assert!(!p.matches(&peer("Org2MSP", 2)));
        assert!(!p.matches(&id("Org1MSP", Role::Client, 3)));

        let m = Principal::new("Org1MSP", PrincipalRole::Member);
        assert!(m.matches(&peer("Org1MSP", 1)));
        assert!(m.matches(&id("Org1MSP", Role::Client, 3)));
        assert!(!m.matches(&peer("Org2MSP", 2)));
    }

    #[test]
    fn and_requires_distinct_endorsements() {
        let policy = SignaturePolicy::parse("AND('Org1MSP.peer','Org1MSP.peer')").unwrap();
        let p1 = peer("Org1MSP", 1);
        let p2 = peer("Org1MSP", 2);
        // One peer signing twice does not satisfy AND of two principals.
        assert!(!policy.satisfied_by(&[p1.clone(), p1.clone()]));
        assert!(policy.satisfied_by(&[p1, p2]));
    }

    #[test]
    fn or_needs_only_one_branch() {
        let policy = SignaturePolicy::parse("OR('Org1MSP.peer','Org2MSP.peer')").unwrap();
        assert!(policy.satisfied_by(&[peer("Org2MSP", 5)]));
        assert!(!policy.satisfied_by(&[peer("Org3MSP", 6)]));
        assert!(!policy.satisfied_by(&[]));
    }

    #[test]
    fn out_of_semantics() {
        // The paper's 2OutOf over five orgs (§IV-A5).
        let policy = SignaturePolicy::parse(
            "OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer','Org5MSP.peer')",
        )
        .unwrap();
        // Two non-member orgs (org3, org4) suffice — the attack's premise.
        assert!(policy.satisfied_by(&[peer("Org3MSP", 3), peer("Org4MSP", 4)]));
        assert!(!policy.satisfied_by(&[peer("Org3MSP", 3)]));
        // One identity cannot satisfy two slots.
        let p3 = peer("Org3MSP", 3);
        assert!(!policy.satisfied_by(&[p3.clone(), p3]));
    }

    #[test]
    fn backtracking_finds_non_greedy_assignment() {
        // A member principal could "steal" the only Org1 peer; backtracking
        // must still find the valid assignment.
        let policy = SignaturePolicy::parse("AND('Org1MSP.member','Org1MSP.peer')").unwrap();
        let p = peer("Org1MSP", 1);
        let c = id("Org1MSP", Role::Client, 2);
        assert!(policy.satisfied_by(&[p.clone(), c.clone()]));
        assert!(policy.satisfied_by(&[c, p]));
    }

    #[test]
    fn majority_rule_matches_equation_one() {
        // Majority(e1..en) per Eq. 1: strictly more than half.
        let orgs: Vec<OrgId> = (1..=3).map(|i| OrgId::new(format!("Org{i}MSP"))).collect();
        let mut org_policies = BTreeMap::new();
        for o in &orgs {
            org_policies.insert(
                o.clone(),
                SignaturePolicy::parse(&format!("OR('{}.peer')", o.as_str())).unwrap(),
            );
        }
        let meta = ImplicitMetaPolicy::parse("MAJORITY Endorsement").unwrap();
        // 2 of 3 is a majority.
        assert!(meta.evaluate(&org_policies, &[peer("Org1MSP", 1), peer("Org3MSP", 3)]));
        // 1 of 3 is not.
        assert!(!meta.evaluate(&org_policies, &[peer("Org1MSP", 1)]));

        let all = ImplicitMetaPolicy::parse("ALL Endorsement").unwrap();
        assert!(!all.evaluate(&org_policies, &[peer("Org1MSP", 1), peer("Org3MSP", 3)]));
        assert!(all.evaluate(
            &org_policies,
            &[peer("Org1MSP", 1), peer("Org2MSP", 2), peer("Org3MSP", 3)]
        ));

        let any = ImplicitMetaPolicy::parse("ANY Endorsement").unwrap();
        assert!(any.evaluate(&org_policies, &[peer("Org2MSP", 2)]));
        assert!(!any.evaluate(&org_policies, &[peer("Org9MSP", 9)]));
    }

    #[test]
    fn majority_with_even_org_count() {
        let orgs: Vec<OrgId> = (1..=4).map(|i| OrgId::new(format!("Org{i}MSP"))).collect();
        let mut org_policies = BTreeMap::new();
        for o in &orgs {
            org_policies.insert(
                o.clone(),
                SignaturePolicy::parse(&format!("OR('{}.peer')", o.as_str())).unwrap(),
            );
        }
        let meta = ImplicitMetaPolicy::parse("MAJORITY Endorsement").unwrap();
        // 2 of 4 is NOT a strict majority; 3 of 4 is.
        assert!(!meta.evaluate(&org_policies, &[peer("Org1MSP", 1), peer("Org2MSP", 2)]));
        assert!(meta.evaluate(
            &org_policies,
            &[peer("Org1MSP", 1), peer("Org2MSP", 2), peer("Org3MSP", 3)]
        ));
    }

    #[test]
    fn duplicate_identities_count_once() {
        let policy =
            SignaturePolicy::parse("OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer')")
                .unwrap();
        let p1 = peer("Org1MSP", 1);
        assert!(!policy.satisfied_by(&[p1.clone(), p1.clone(), p1]));
    }

    #[test]
    fn organizations_lists_unique_orgs() {
        let policy =
            SignaturePolicy::parse("OR(AND('Org1MSP.peer','Org2MSP.peer'),'Org1MSP.admin')")
                .unwrap();
        let orgs = policy.organizations();
        assert_eq!(orgs, vec![OrgId::new("Org1MSP"), OrgId::new("Org2MSP")]);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for expr in [
            "AND('Org1MSP.peer','Org2MSP.peer')",
            "OR('Org1MSP.member')",
            "OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer')",
        ] {
            let p = SignaturePolicy::parse(expr).unwrap();
            let reparsed = SignaturePolicy::parse(&p.to_string()).unwrap();
            assert_eq!(p, reparsed);
        }
    }

    #[test]
    fn satisfiable_within_models_org_subsets() {
        let orgs =
            |names: &[&str]| -> Vec<OrgId> { names.iter().map(|n| OrgId::new(*n)).collect() };
        let policy = SignaturePolicy::parse(
            "OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer','Org5MSP.peer')",
        )
        .unwrap();
        // Two non-member orgs reach the threshold — the Use Case 1 premise.
        assert!(policy.satisfiable_within(&orgs(&["Org3MSP", "Org4MSP"])));
        assert!(!policy.satisfiable_within(&orgs(&["Org3MSP"])));

        let and = SignaturePolicy::parse("AND('Org1MSP.peer','Org2MSP.peer')").unwrap();
        assert!(and.satisfiable_within(&orgs(&["Org1MSP", "Org2MSP"])));
        assert!(!and.satisfiable_within(&orgs(&["Org1MSP", "Org3MSP"])));

        // Unlimited identities per org: AND of two same-org principals is
        // satisfiable within that single org.
        let twice = SignaturePolicy::parse("AND('Org1MSP.peer','Org1MSP.peer')").unwrap();
        assert!(twice.satisfiable_within(&orgs(&["Org1MSP"])));
    }

    #[test]
    fn unsatisfiable_policies_detected() {
        // The parser rejects thresholds above the operand count, so an
        // unsatisfiable tree can only arise programmatically.
        let too_many = SignaturePolicy::OutOf(
            3,
            vec![
                SignaturePolicy::Principal(Principal::new(
                    "Org1MSP",
                    PrincipalRole::Exact(Role::Peer),
                )),
                SignaturePolicy::Principal(Principal::new(
                    "Org2MSP",
                    PrincipalRole::Exact(Role::Peer),
                )),
            ],
        );
        assert!(too_many.is_unsatisfiable());
        let fine = SignaturePolicy::parse("OR('Org1MSP.peer')").unwrap();
        assert!(!fine.is_unsatisfiable());
        // Vacuous 0-of is satisfiable (by the empty set), not unsatisfiable.
        let vacuous = SignaturePolicy::parse("OutOf(0,'Org1MSP.peer')").unwrap();
        assert!(!vacuous.is_unsatisfiable());
        assert!(vacuous.satisfied_by(&[]));
    }

    #[test]
    fn combinations_enumerates_all() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 3).len(), 10);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn policy_parse_dispatches_families() {
        assert!(matches!(
            Policy::parse("MAJORITY Endorsement").unwrap(),
            Policy::ImplicitMeta(_)
        ));
        assert!(matches!(
            Policy::parse("OR('Org1MSP.peer')").unwrap(),
            Policy::Signature(_)
        ));
        assert!(Policy::parse("NOT A POLICY ((").is_err());
    }
}
