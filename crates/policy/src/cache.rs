//! Interning cache for compiled signature-policy expressions.

use crate::ast::SignaturePolicy;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// A concurrent expression → compiled [`SignaturePolicy`] cache.
///
/// State-based endorsement stores policy *expressions* in the world state,
/// so the committing peer sees the same few strings over and over — once
/// per governed key per transaction. Interning the compiled AST turns that
/// into a single parse per distinct expression for the life of the peer.
///
/// Unparsable expressions are interned as `None` so a malformed parameter
/// cannot defeat the cache either.
#[derive(Default)]
pub struct PolicyCache {
    entries: RwLock<HashMap<String, Option<Arc<SignaturePolicy>>>>,
}

impl PolicyCache {
    /// An empty cache.
    pub fn new() -> Self {
        PolicyCache::default()
    }

    /// The compiled policy for `expr`, parsing and interning on first use.
    ///
    /// Returns `None` when the expression does not parse (callers treat
    /// that exactly like a fresh parse failure).
    pub fn get_or_parse(&self, expr: &str) -> Option<Arc<SignaturePolicy>> {
        if let Some(hit) = self.entries.read().expect("cache lock").get(expr) {
            return hit.clone();
        }
        let compiled = SignaturePolicy::parse(expr).ok().map(Arc::new);
        let mut entries = self.entries.write().expect("cache lock");
        entries.entry(expr.to_string()).or_insert(compiled).clone()
    }

    /// Number of distinct expressions interned so far.
    pub fn len(&self) -> usize {
        self.entries.read().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for PolicyCache {
    fn clone(&self) -> Self {
        PolicyCache {
            entries: RwLock::new(self.entries.read().expect("cache lock").clone()),
        }
    }
}

impl fmt::Debug for PolicyCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyCache")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_each_expression_once() {
        let cache = PolicyCache::new();
        let a1 = cache.get_or_parse("OR('Org1MSP.peer')").expect("parses");
        let a2 = cache.get_or_parse("OR('Org1MSP.peer')").expect("parses");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn caches_parse_failures() {
        let cache = PolicyCache::new();
        assert!(cache.get_or_parse("not a policy").is_none());
        assert!(cache.get_or_parse("not a policy").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clone_carries_entries() {
        let cache = PolicyCache::new();
        cache.get_or_parse("OR('Org1MSP.peer')");
        assert_eq!(cache.clone().len(), 1);
    }
}
