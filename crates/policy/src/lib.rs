//! Endorsement policy language for the Fabric PDC simulator.
//!
//! Policies are the heart of the paper's "proof-of-policy" consensus:
//! a transaction is valid only if its endorsement set satisfies the
//! applicable policy. Two families exist (Section II-A4):
//!
//! * **Signature policies** — logical expressions over principals:
//!   `AND('Org1MSP.peer','Org2MSP.peer')`, `OR(...)`,
//!   `OutOf(2,'Org1MSP.peer',...)`. The paper's `2OutOf(...)` spelling is
//!   also accepted.
//! * **implicitMeta policies** — `ANY/ALL/MAJORITY <name>` over the
//!   organizations' own sub-policies, e.g. the default chaincode-level
//!   policy `MAJORITY Endorsement` (Eq. 1 in the paper).
//!
//! Evaluation is *matching-exact*: each endorsement may satisfy at most one
//! principal requirement, as in Fabric (so `AND('Org1.peer','Org1.peer')`
//! needs two distinct Org1 peers).
//!
//! # Examples
//!
//! ```
//! use fabric_policy::SignaturePolicy;
//! use fabric_types::{Identity, Role};
//! use fabric_crypto::Keypair;
//!
//! # fn main() -> Result<(), fabric_policy::ParsePolicyError> {
//! let policy = SignaturePolicy::parse("AND('Org1MSP.peer','Org2MSP.peer')")?;
//! let p1 = Identity::new("Org1MSP", Role::Peer, Keypair::generate_from_seed(1).public_key());
//! let p2 = Identity::new("Org2MSP", Role::Peer, Keypair::generate_from_seed(2).public_key());
//! assert!(policy.satisfied_by(&[p1.clone(), p2]));
//! assert!(!policy.satisfied_by(&[p1]));
//! # Ok(())
//! # }
//! ```

mod ast;
mod cache;
mod parser;
mod plan;

pub use ast::{
    ImplicitMetaPolicy, ImplicitMetaRule, Policy, Principal, PrincipalRole, SignaturePolicy,
};
pub use cache::PolicyCache;
pub use parser::ParsePolicyError;
pub use plan::{minimal_endorsement_set, minimal_endorsement_set_for};
