//! Recursive-descent parser for policy expressions.
//!
//! Accepts both the Fabric configuration spelling and the paper's informal
//! spelling:
//!
//! * `AND('Org1MSP.peer', 'Org2MSP.peer')`
//! * `OR('Org1MSP.member')`
//! * `OutOf(2, 'Org1MSP.peer', 'Org2MSP.peer', 'Org3MSP.peer')`
//! * `2OutOf(org1.peer, org2.peer, org3.peer)` (paper §IV-A5)
//! * implicitMeta: `MAJORITY Endorsement`, `ANY Readers`, `ALL Writers`

use crate::ast::{ImplicitMetaPolicy, ImplicitMetaRule, Principal, PrincipalRole, SignaturePolicy};
use fabric_types::Role;
use std::fmt;

/// Error parsing a policy expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParsePolicyError {}

/// Parses a signature policy expression.
pub fn parse_signature_policy(expr: &str) -> Result<SignaturePolicy, ParsePolicyError> {
    let mut p = Parser::new(expr);
    let policy = p.parse_term()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(policy)
}

/// Parses an implicitMeta policy expression (`MAJORITY Endorsement`).
pub fn parse_implicit_meta(expr: &str) -> Result<ImplicitMetaPolicy, ParsePolicyError> {
    let trimmed = expr.trim();
    let mut parts = trimmed.split_whitespace();
    let rule_word = parts.next().unwrap_or("");
    let rule = match rule_word {
        "ANY" => ImplicitMetaRule::Any,
        "ALL" => ImplicitMetaRule::All,
        "MAJORITY" => ImplicitMetaRule::Majority,
        _ => {
            return Err(ParsePolicyError {
                position: 0,
                message: format!("expected ANY/ALL/MAJORITY, found {rule_word:?}"),
            })
        }
    };
    let sub_policy = parts.next().ok_or_else(|| ParsePolicyError {
        position: rule_word.len(),
        message: "expected sub-policy name after rule".into(),
    })?;
    if parts.next().is_some() {
        return Err(ParsePolicyError {
            position: trimmed.len(),
            message: "unexpected trailing input".into(),
        });
    }
    Ok(ImplicitMetaPolicy {
        rule,
        sub_policy: sub_policy.to_string(),
    })
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParsePolicyError {
        ParsePolicyError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParsePolicyError> {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    /// Reads a bare word: letters, digits, `_`, `-`, `.`.
    fn word(&mut self) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        &self.input[start..self.pos]
    }

    fn parse_term(&mut self) -> Result<SignaturePolicy, ParsePolicyError> {
        self.skip_ws();
        if self.peek() == Some(b'\'') || self.peek() == Some(b'"') {
            return self.parse_quoted_principal();
        }
        let start = self.pos;
        let word = self.word();
        if word.is_empty() {
            return Err(self.error("expected policy operator or principal"));
        }
        // `<digits>OutOf(...)` — the paper's NOutOf spelling.
        if let Some(num_end) = word.find(|c: char| !c.is_ascii_digit()) {
            if num_end > 0 && word[num_end..].eq_ignore_ascii_case("outof") {
                let n: u32 = word[..num_end]
                    .parse()
                    .map_err(|_| self.error("invalid count before OutOf"))?;
                let children = self.parse_args(None)?;
                return self.finish_out_of(n, children);
            }
        }
        match word.to_ascii_uppercase().as_str() {
            "AND" => {
                let children = self.parse_args(None)?;
                if children.is_empty() {
                    return Err(self.error("AND requires at least one operand"));
                }
                Ok(SignaturePolicy::And(children))
            }
            "OR" => {
                let children = self.parse_args(None)?;
                if children.is_empty() {
                    return Err(self.error("OR requires at least one operand"));
                }
                Ok(SignaturePolicy::Or(children))
            }
            "OUTOF" | "NOUTOF" => {
                let (n, children) = self.parse_out_of_args()?;
                self.finish_out_of(n, children)
            }
            _ => {
                // A bare principal like `org1.peer` (paper spelling).
                self.pos = start;
                let word = self.word();
                self.parse_principal_text(word)
            }
        }
    }

    fn finish_out_of(
        &self,
        n: u32,
        children: Vec<SignaturePolicy>,
    ) -> Result<SignaturePolicy, ParsePolicyError> {
        if children.is_empty() {
            return Err(self.error("OutOf requires at least one operand"));
        }
        if n as usize > children.len() {
            return Err(self.error(format!(
                "OutOf count {n} exceeds {} operands",
                children.len()
            )));
        }
        Ok(SignaturePolicy::OutOf(n, children))
    }

    /// Parses `(term, term, ...)`.
    fn parse_args(
        &mut self,
        first: Option<SignaturePolicy>,
    ) -> Result<Vec<SignaturePolicy>, ParsePolicyError> {
        self.eat(b'(')?;
        let mut out = Vec::new();
        if let Some(f) = first {
            out.push(f);
        }
        self.skip_ws();
        if self.peek() == Some(b')') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.parse_term()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.error("expected ',' or ')'")),
            }
        }
    }

    /// Parses `(n, term, ...)` for the Fabric `OutOf` spelling.
    fn parse_out_of_args(&mut self) -> Result<(u32, Vec<SignaturePolicy>), ParsePolicyError> {
        self.eat(b'(')?;
        self.skip_ws();
        let digits = self.word();
        let n: u32 = digits
            .parse()
            .map_err(|_| self.error("OutOf requires a leading integer count"))?;
        self.skip_ws();
        let mut children = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    children.push(self.parse_term()?);
                }
                Some(b')') => {
                    self.pos += 1;
                    return Ok((n, children));
                }
                _ => return Err(self.error("expected ',' or ')'")),
            }
        }
    }

    fn parse_quoted_principal(&mut self) -> Result<SignaturePolicy, ParsePolicyError> {
        let quote = self.peek().expect("caller checked quote");
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let text = &self.input[start..self.pos];
                self.pos += 1;
                return self.parse_principal_text(text);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated quoted principal"))
    }

    fn parse_principal_text(&self, text: &str) -> Result<SignaturePolicy, ParsePolicyError> {
        let Some((org, role)) = text.rsplit_once('.') else {
            return Err(self.error(format!("principal {text:?} must have the form Org.role")));
        };
        if org.is_empty() {
            return Err(self.error("principal has empty organization"));
        }
        let role = if role.eq_ignore_ascii_case("member") {
            PrincipalRole::Member
        } else {
            match Role::parse(&role.to_ascii_lowercase()) {
                Some(r) => PrincipalRole::Exact(r),
                None => {
                    return Err(self.error(format!("unknown role {role:?}")));
                }
            }
        };
        Ok(SignaturePolicy::Principal(Principal::new(org, role)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::OrgId;

    fn principal(org: &str, role: PrincipalRole) -> SignaturePolicy {
        SignaturePolicy::Principal(Principal::new(org, role))
    }

    #[test]
    fn parses_fabric_spelling() {
        let p = parse_signature_policy("AND('Org1MSP.peer', 'Org2MSP.member')").unwrap();
        assert_eq!(
            p,
            SignaturePolicy::And(vec![
                principal("Org1MSP", PrincipalRole::Exact(Role::Peer)),
                principal("Org2MSP", PrincipalRole::Member),
            ])
        );
    }

    #[test]
    fn parses_paper_spelling() {
        // §IV-A5: 2OutOf(org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)
        let p =
            parse_signature_policy("2OutOf(org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)")
                .unwrap();
        match p {
            SignaturePolicy::OutOf(2, children) => assert_eq!(children.len(), 5),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_fabric_out_of() {
        let p = parse_signature_policy("OutOf(2, 'Org1MSP.peer', 'Org2MSP.peer')").unwrap();
        assert_eq!(
            p,
            SignaturePolicy::OutOf(
                2,
                vec![
                    principal("Org1MSP", PrincipalRole::Exact(Role::Peer)),
                    principal("Org2MSP", PrincipalRole::Exact(Role::Peer)),
                ]
            )
        );
    }

    #[test]
    fn parses_nested_expressions() {
        let p = parse_signature_policy("OR(AND('Org1MSP.peer','Org2MSP.peer'), 'Org3MSP.admin')")
            .unwrap();
        match p {
            SignaturePolicy::Or(children) => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[0], SignaturePolicy::And(_)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_double_quotes() {
        let p = parse_signature_policy("OR(\"Org1MSP.peer\")").unwrap();
        assert_eq!(
            p,
            SignaturePolicy::Or(vec![principal("Org1MSP", PrincipalRole::Exact(Role::Peer))])
        );
    }

    #[test]
    fn org_names_may_contain_dots() {
        // rsplit_once: the role is after the *last* dot.
        let p = parse_signature_policy("'acme.example.peer'").unwrap();
        assert_eq!(
            p,
            principal("acme.example", PrincipalRole::Exact(Role::Peer))
        );
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "AND(",
            "AND()",
            "AND('Org1MSP.peer'",
            "XOR('Org1MSP.peer')",
            "'Org1MSP'",
            "'Org1MSP.banker'",
            "OutOf(9,'Org1MSP.peer')",
            "OutOf(x,'Org1MSP.peer')",
            "AND('Org1MSP.peer') trailing",
            "'.peer'",
        ] {
            assert!(
                parse_signature_policy(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn error_carries_position() {
        let err = parse_signature_policy("AND('Org1MSP.peer',").unwrap_err();
        assert!(err.position >= 18, "position was {}", err.position);
        assert!(!err.message.is_empty());
        assert!(err.to_string().contains("policy parse error"));
    }

    #[test]
    fn implicit_meta_parses() {
        let p = parse_implicit_meta("MAJORITY Endorsement").unwrap();
        assert_eq!(p.rule, ImplicitMetaRule::Majority);
        assert_eq!(p.sub_policy, "Endorsement");
        assert!(parse_implicit_meta("SOME Endorsement").is_err());
        assert!(parse_implicit_meta("MAJORITY").is_err());
        assert!(parse_implicit_meta("MAJORITY Endorsement extra").is_err());
    }

    #[test]
    fn organizations_from_parsed_policy() {
        let p = parse_signature_policy("2OutOf(org1.peer, org2.peer, org3.peer)").unwrap();
        assert_eq!(
            p.organizations(),
            vec![OrgId::new("org1"), OrgId::new("org2"), OrgId::new("org3")]
        );
    }
}
