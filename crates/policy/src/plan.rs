//! Endorsement planning: which peers must sign so a policy passes.
//!
//! Fabric's *service discovery* answers this for client SDKs; here the
//! same question is answered combinatorially over the simulator's
//! identities. The planner is also a measurement tool for the paper's
//! attacks: the **cheapest** satisfying set under `MAJORITY Endorsement`
//! routinely consists of PDC non-members, which is exactly why the default
//! policy is dangerous (Use Case 2).

use crate::ast::{ImplicitMetaPolicy, Policy, SignaturePolicy};
use fabric_types::{Identity, OrgId};
use std::collections::BTreeMap;

/// Finds a minimum-cardinality subset of `available` identities that
/// satisfies `policy`, or `None` when even the full set fails.
///
/// Deterministic: among equal-size sets, the one earliest in `available`
/// order wins. Exponential in the worst case, fine for channel-sized
/// inputs (Fabric channels have tens of peers, not thousands).
pub fn minimal_endorsement_set(
    policy: &SignaturePolicy,
    available: &[Identity],
) -> Option<Vec<Identity>> {
    if !policy.satisfied_by(available) {
        return None;
    }
    for size in 1..=available.len() {
        let mut found = None;
        for_each_combination(available.len(), size, &mut |combo| {
            if found.is_some() {
                return;
            }
            let subset: Vec<Identity> = combo.iter().map(|&i| available[i].clone()).collect();
            if policy.satisfied_by(&subset) {
                found = Some(subset);
            }
        });
        if found.is_some() {
            return found;
        }
    }
    // `available` itself satisfied the policy, so some subset (at worst the
    // whole set) must have been found above.
    Some(available.to_vec())
}

/// [`minimal_endorsement_set`] for either policy family, resolving
/// implicitMeta sub-policies through `org_policies`.
pub fn minimal_endorsement_set_for(
    policy: &Policy,
    org_policies: &BTreeMap<OrgId, SignaturePolicy>,
    available: &[Identity],
) -> Option<Vec<Identity>> {
    match policy {
        Policy::Signature(p) => minimal_endorsement_set(p, available),
        Policy::ImplicitMeta(meta) => minimal_meta_set(meta, org_policies, available),
    }
}

fn minimal_meta_set(
    meta: &ImplicitMetaPolicy,
    org_policies: &BTreeMap<OrgId, SignaturePolicy>,
    available: &[Identity],
) -> Option<Vec<Identity>> {
    if !meta.evaluate(org_policies, available) {
        return None;
    }
    for size in 1..=available.len() {
        let mut found = None;
        for_each_combination(available.len(), size, &mut |combo| {
            if found.is_some() {
                return;
            }
            let subset: Vec<Identity> = combo.iter().map(|&i| available[i].clone()).collect();
            if meta.evaluate(org_policies, &subset) {
                found = Some(subset);
            }
        });
        if found.is_some() {
            return found;
        }
    }
    Some(available.to_vec())
}

/// Calls `f` with each `k`-combination of `0..n` in lexicographic order.
fn for_each_combination(n: usize, k: usize, f: &mut dyn FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut combo: Vec<usize> = (0..k).collect();
    loop {
        f(&combo);
        // Advance.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if combo[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        combo[i] += 1;
        for j in i + 1..k {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::Keypair;
    use fabric_types::Role;

    fn peer(org: &str, seed: u64) -> Identity {
        Identity::new(
            org,
            Role::Peer,
            Keypair::generate_from_seed(seed).public_key(),
        )
    }

    fn channel_peers() -> Vec<Identity> {
        (1..=5)
            .map(|i| peer(&format!("Org{i}MSP"), 700 + i))
            .collect()
    }

    #[test]
    fn and_needs_both_named_orgs() {
        let policy = SignaturePolicy::parse("AND('Org1MSP.peer','Org2MSP.peer')").unwrap();
        let plan = minimal_endorsement_set(&policy, &channel_peers()).unwrap();
        assert_eq!(plan.len(), 2);
        let orgs: Vec<String> = plan.iter().map(|p| p.org.to_string()).collect();
        assert_eq!(orgs, vec!["Org1MSP", "Org2MSP"]);
    }

    #[test]
    fn or_needs_exactly_one() {
        let policy = SignaturePolicy::parse("OR('Org3MSP.peer','Org4MSP.peer')").unwrap();
        let plan = minimal_endorsement_set(&policy, &channel_peers()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].org, OrgId::new("Org3MSP"));
    }

    #[test]
    fn out_of_picks_cheapest_k() {
        let policy = SignaturePolicy::parse(
            "OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer','Org5MSP.peer')",
        )
        .unwrap();
        let plan = minimal_endorsement_set(&policy, &channel_peers()).unwrap();
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn unsatisfiable_returns_none() {
        let policy = SignaturePolicy::parse("AND('Org9MSP.peer','Org1MSP.peer')").unwrap();
        assert!(minimal_endorsement_set(&policy, &channel_peers()).is_none());
    }

    #[test]
    fn majority_meta_plan_is_strict_majority() {
        let mut org_policies = BTreeMap::new();
        for i in 1..=5 {
            org_policies.insert(
                OrgId::new(format!("Org{i}MSP")),
                SignaturePolicy::parse(&format!("OR('Org{i}MSP.peer')")).unwrap(),
            );
        }
        let policy = Policy::parse("MAJORITY Endorsement").unwrap();
        let plan = minimal_endorsement_set_for(&policy, &org_policies, &channel_peers()).unwrap();
        assert_eq!(plan.len(), 3, "3 of 5 is the strict majority");
    }

    #[test]
    fn majority_plan_can_be_all_non_members_of_a_pdc() {
        // The planner exposes the paper's point: under MAJORITY on a 5-org
        // channel with PDC = {org1, org2}, a valid minimal plan can consist
        // entirely of non-members (org3, org4, org5).
        let mut org_policies = BTreeMap::new();
        for i in 1..=5 {
            org_policies.insert(
                OrgId::new(format!("Org{i}MSP")),
                SignaturePolicy::parse(&format!("OR('Org{i}MSP.peer')")).unwrap(),
            );
        }
        let policy = Policy::parse("MAJORITY Endorsement").unwrap();
        // Only non-member peers are "available" (an attacker's view).
        let non_members: Vec<Identity> = (3..=5)
            .map(|i| peer(&format!("Org{i}MSP"), 800 + i))
            .collect();
        let plan = minimal_endorsement_set_for(&policy, &org_policies, &non_members).unwrap();
        assert_eq!(plan.len(), 3);
        assert!(plan
            .iter()
            .all(|p| p.org != OrgId::new("Org1MSP") && p.org != OrgId::new("Org2MSP")));
    }

    #[test]
    fn plan_is_deterministic() {
        let policy =
            SignaturePolicy::parse("OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer')")
                .unwrap();
        let a = minimal_endorsement_set(&policy, &channel_peers()).unwrap();
        let b = minimal_endorsement_set(&policy, &channel_peers()).unwrap();
        assert_eq!(a, b);
    }
}
