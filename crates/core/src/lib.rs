//! # fabric-pdc — On Private Data Collection of Hyperledger Fabric
//!
//! A from-scratch Rust reproduction of *"On Private Data Collection of
//! Hyperledger Fabric"* (Wang et al., ICDCS 2021): a Hyperledger
//! Fabric–faithful permissioned-blockchain simulator, the paper's fake PDC
//! results injection and PDC leakage attacks, the two proposed defenses,
//! and the static analyzer + corpus study of §V-C.
//!
//! This crate is the umbrella: it re-exports every subsystem crate and a
//! [`prelude`] with the types most programs need.
//!
//! ## Architecture
//!
//! | layer | crate | role |
//! |---|---|---|
//! | wire | [`wire`] | canonical binary encoding for hashing/signing |
//! | crypto | [`crypto`] | SHA-256 (FIPS 180-4), HMAC, simulated signatures |
//! | types | [`types`] | proposals, rwsets, transactions, blocks, collections |
//! | policy | [`policy`] | signature + implicitMeta endorsement policies |
//! | ledger | [`ledger`] | versioned world state, private stores, block store |
//! | raft | [`raft`] | consensus for the ordering service |
//! | gossip | [`gossip`] | private-data dissemination + transient stores |
//! | chaincode | [`chaincode`] | shim API, tx simulator, sample contracts |
//! | peer | [`peer`] | endorsement + validation/commit (and the defenses) |
//! | orderer | [`orderer`] | Raft-backed block cutting |
//! | client | [`client`] | proposal/transaction assembly SDK |
//! | network | [`network`] | in-process composition of everything above |
//! | attacks | [`attacks`] | §IV attacks and the §V-A/§V-B experiment labs |
//! | analyzer | [`analyzer`] | §V-C static analyzer + synthetic corpus |
//! | lint | [`lint`] | rule-based PDC misconfiguration linter (text/JSON/SARIF) |
//! | flow | [`flow`] | information-flow taint analysis of chaincode leakage |
//! | telemetry | [`telemetry`] | tracing spans, metrics registry, security-audit events |
//! | monitor | [`monitor`] | streaming health scoring, rate anomaly detection, alerting |
//! | workload | [`workload`] | open-loop load harness, latency-vs-load curves, knee detection |
//!
//! ## Quick start
//!
//! ```
//! use fabric_pdc::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-org channel with one peer and one client per org.
//! let mut net = NetworkBuilder::new("mychannel")
//!     .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
//!     .seed(1)
//!     .build();
//! net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
//!
//! let outcome = net.submit_transaction(
//!     "client0.org1",
//!     "assets",
//!     "CreateAsset",
//!     &["asset1", "blue", "alice", "400"],
//!     &[],
//!     &["peer0.org1", "peer0.org2"],
//! )?;
//! assert!(outcome.validation_code.is_valid());
//! # Ok(())
//! # }
//! ```
//!
//! ## Reproducing the paper
//!
//! * **Table I** — `cargo run -p fabric-bench --bin table1`
//! * **Table II** — `cargo run -p fabric-bench --bin table2` (also
//!   [`attacks::run_table2`])
//! * **Figs. 7–10** — `cargo run -p fabric-bench --bin fig7_to_10`
//! * **Fig. 11** — `cargo bench -p fabric-bench --bench fig11_latency`
//!
//! See `EXPERIMENTS.md` at the repository root for paper-vs-measured
//! results.

pub use fabric_analyzer as analyzer;
pub use fabric_attacks as attacks;
pub use fabric_chaincode as chaincode;
pub use fabric_client as client;
pub use fabric_crypto as crypto;
pub use fabric_flow as flow;
pub use fabric_gossip as gossip;
pub use fabric_ledger as ledger;
pub use fabric_lint as lint;
pub use fabric_monitor as monitor;
pub use fabric_network as network;
pub use fabric_orderer as orderer;
pub use fabric_peer as peer;
pub use fabric_policy as policy;
pub use fabric_raft as raft;
pub use fabric_telemetry as telemetry;
pub use fabric_types as types;
pub use fabric_wire as wire;
pub use fabric_workload as workload;

/// The types most programs start from.
pub mod prelude {
    pub use fabric_chaincode::samples::{
        Asset, AssetTransfer, Guard, GuardedPdc, PerfTest, SaccPrivate, SaccPrivateFixed, SbeDemo,
        SecuredTrade,
    };
    pub use fabric_chaincode::{Chaincode, ChaincodeDefinition, ChaincodeError, ChaincodeStub};
    pub use fabric_client::Client;
    pub use fabric_crypto::{sha256, Hash256, Keypair};
    pub use fabric_monitor::{
        AlertPhase, AlertTransition, Monitor, MonitorConfig, NetworkStatus, NodeSample,
    };
    pub use fabric_network::{
        FabricNetwork, FanoutMode, NetworkBuilder, NetworkError, SubmitOutcome,
    };
    pub use fabric_peer::Peer;
    pub use fabric_policy::{Policy, SignaturePolicy};
    pub use fabric_telemetry::{
        render_chrome_trace, render_spans_jsonl, AuditEvent, Telemetry, TraceContext, TxTimeline,
    };
    pub use fabric_types::{
        ChaincodeId, ChannelId, CollectionConfig, CollectionName, DefenseConfig, Identity, OrgId,
        Proposal, Role, Transaction, TxId, TxKind, TxValidationCode,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_reexports() {
        let kp = Keypair::generate_from_seed(1);
        let id = Identity::new("Org1MSP", Role::Peer, kp.public_key());
        assert_eq!(id.org, OrgId::new("Org1MSP"));
        assert!(DefenseConfig::hardened().hashed_payload_commitment);
        assert_eq!(sha256(b"x").to_hex().len(), 64);
    }
}
