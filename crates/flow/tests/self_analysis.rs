//! Self-analysis regression: the flow analyzer over the repo's own
//! sample chaincodes.
//!
//! The deliberately leaky sample must trigger every flow rule with a
//! complete source→sink path rendered into all three output formats;
//! the defended samples must analyze clean. Each rule also gets one
//! minimal closure-based fixture that triggers it and one that provably
//! does not.

use fabric_chaincode::{ChaincodeDefinition, ChaincodeStub};
use fabric_flow::{
    analyze_target, channel_orgs, sample_registry, ArgSpec, EntryPoint, FlowTarget, SEED_KEY,
};
use fabric_lint::render::{render_json, render_sarif, render_text};
use fabric_lint::Finding;
use fabric_types::{CollectionConfig, CollectionName, OrgId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn target_named(name: &str) -> FlowTarget {
    sample_registry()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("no registry target named {name}"))
}

fn rule_ids(findings: &[Finding]) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = findings.iter().map(|f| f.rule_id).collect();
    ids.dedup();
    ids
}

#[test]
fn leaky_escrow_triggers_every_flow_rule() {
    let findings = analyze_target(&target_named("leaky_escrow"));
    let ids = rule_ids(&findings);
    for rule in ["PDC012", "PDC013", "PDC014", "PDC015", "PDC016", "PDC017"] {
        assert!(ids.contains(&rule), "{rule} missing from {ids:?}");
    }
}

#[test]
fn leaky_escrow_findings_carry_complete_flow_paths() {
    let findings = analyze_target(&target_named("leaky_escrow"));
    for rule in ["PDC012", "PDC013", "PDC014", "PDC015"] {
        let f = findings
            .iter()
            .find(|f| f.rule_id == rule)
            .unwrap_or_else(|| panic!("{rule} expected"));
        assert!(
            f.message.contains("flow: GetPrivateData(escrowCollection"),
            "{rule} lacks a source step: {}",
            f.message
        );
        assert!(f.message.contains(" -> "), "{rule}: {}", f.message);
    }
    // Sink ends per rule.
    let msg = |rule: &str| &findings.iter().find(|f| f.rule_id == rule).unwrap().message;
    assert!(msg("PDC012").ends_with("public world state"));
    assert!(msg("PDC013").ends_with("every block listener"));
    assert!(msg("PDC014").contains("response payload to the Org3MSP client"));
    assert!(msg("PDC015").contains("collection 'auditCollection'"));
}

#[test]
fn flow_paths_reach_all_three_renderers() {
    let findings = analyze_target(&target_named("leaky_escrow"));
    let text = render_text(&findings);
    let json = render_json(&findings);
    let sarif = render_sarif(&findings);
    for out in [&text, &json, &sarif] {
        assert!(out.contains("flow: GetPrivateData(escrowCollection"));
        assert!(out.contains("PDC012"));
        assert!(out.contains("PDC017"));
    }
    // SARIF indexes every flow rule in the registry.
    for rule in [
        "PDC012", "PDC013", "PDC014", "PDC015", "PDC016", "PDC017", "PDC018",
    ] {
        assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
    }
}

#[test]
fn defended_samples_analyze_clean() {
    for name in ["guarded", "sacc", "sacc_fixed", "secured_trade"] {
        let findings = analyze_target(&target_named(name));
        assert!(
            findings.is_empty(),
            "{name} must produce no flow findings: {findings:#?}"
        );
    }
}

// ---- minimal per-rule fixtures: one trigger, one non-trigger ----

/// A single-collection target around a closure chaincode.
fn closure_target(
    collections: &[(&str, &[&str])],
    entry: EntryPoint,
    chaincode: impl Fn(&mut ChaincodeStub<'_>) -> Result<Vec<u8>, fabric_chaincode::ChaincodeError>
        + Send
        + Sync
        + 'static,
) -> FlowTarget {
    let mut definition = ChaincodeDefinition::new("fixture");
    for (name, orgs) in collections {
        let orgs: Vec<OrgId> = orgs.iter().map(|o| OrgId::new(*o)).collect();
        definition = definition.with_collection(CollectionConfig::membership_of(*name, &orgs));
    }
    FlowTarget {
        name: "fixture".into(),
        uri: "test:fixture".into(),
        chaincode: Arc::new(chaincode),
        definition,
        entry_points: vec![entry],
        channel_orgs: channel_orgs(),
    }
}

fn only_rules(findings: &[Finding], expect: &[&str]) {
    let ids = rule_ids(findings);
    assert_eq!(ids, expect, "{findings:#?}");
}

#[test]
fn pdc012_public_write_of_private_data() {
    let pdc = CollectionName::new("pdc");
    let leak = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("copy", [ArgSpec::SeedKey]),
        {
            let pdc = pdc.clone();
            move |stub| {
                let v = stub.get_private_data(&pdc, SEED_KEY)?.unwrap_or_default();
                stub.put_state("out", v);
                Ok(Vec::new())
            }
        },
    );
    only_rules(&analyze_target(&leak), &["PDC012"]);

    // Non-trigger: the write stays in the collection.
    let safe = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("copy", [ArgSpec::SeedKey]),
        move |stub| {
            let v = stub.get_private_data(&pdc, SEED_KEY)?.unwrap_or_default();
            stub.put_private_data(&pdc, "out", v);
            Ok(Vec::new())
        },
    );
    only_rules(&analyze_target(&safe), &[]);
}

#[test]
fn pdc013_event_emission_of_private_data() {
    let pdc = CollectionName::new("pdc");
    let leak = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("emit", [ArgSpec::SeedKey]),
        {
            let pdc = pdc.clone();
            move |stub| {
                let v = stub.get_private_data(&pdc, SEED_KEY)?.unwrap_or_default();
                stub.set_event("leak", v);
                Ok(Vec::new())
            }
        },
    );
    only_rules(&analyze_target(&leak), &["PDC013"]);

    // Non-trigger: the event carries only the (public) key name.
    let safe = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("emit", [ArgSpec::SeedKey]),
        move |stub| {
            stub.get_private_data(&pdc, SEED_KEY)?;
            stub.set_event("updated", SEED_KEY.as_bytes().to_vec());
            Ok(Vec::new())
        },
    );
    only_rules(&analyze_target(&safe), &[]);
}

#[test]
fn pdc014_response_to_non_member_depends_on_member_only_read() {
    // member_only_read=false lets the Org3 client receive the value.
    let pdc = CollectionName::new("pdc");
    let mut leak = closure_target(&[], EntryPoint::new("read", [ArgSpec::SeedKey]), {
        let pdc = pdc.clone();
        move |stub| Ok(stub.get_private_data(&pdc, SEED_KEY)?.unwrap_or_default())
    });
    leak.definition = ChaincodeDefinition::new("fixture").with_collection(
        CollectionConfig::membership_of("pdc", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_member_only_read(false),
    );
    only_rules(&analyze_target(&leak), &["PDC014"]);

    // Non-trigger: default member_only_read=true blocks the non-member
    // client before the payload exists; member clients may read.
    let safe = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("read", [ArgSpec::SeedKey]),
        move |stub| Ok(stub.get_private_data(&pdc, SEED_KEY)?.unwrap_or_default()),
    );
    only_rules(&analyze_target(&safe), &[]);
}

#[test]
fn pdc015_downgrade_fires_only_toward_laxer_collections() {
    let strict = CollectionName::new("strict");
    let lax = CollectionName::new("lax");
    let leak = closure_target(
        &[
            ("strict", &["Org1MSP", "Org2MSP"]),
            ("lax", &["Org1MSP", "Org3MSP"]),
        ],
        EntryPoint::new("mirror", [ArgSpec::SeedKey]),
        {
            let strict = strict.clone();
            let lax = lax.clone();
            move |stub| {
                let v = stub
                    .get_private_data(&strict, SEED_KEY)?
                    .unwrap_or_default();
                stub.put_private_data(&lax, "copy", v);
                Ok(Vec::new())
            }
        },
    );
    only_rules(&analyze_target(&leak), &["PDC015"]);

    // Non-trigger: copying into a strict *subset* collection loses
    // nothing — every subset member already held the source.
    let wide = CollectionName::new("wide");
    let narrow = CollectionName::new("narrow");
    let safe = closure_target(
        &[("wide", &["Org1MSP", "Org2MSP"]), ("narrow", &["Org1MSP"])],
        EntryPoint::new("mirror", [ArgSpec::SeedKey]),
        move |stub| {
            let v = stub.get_private_data(&wide, SEED_KEY)?.unwrap_or_default();
            stub.put_private_data(&narrow, "copy", v);
            Ok(Vec::new())
        },
    );
    only_rules(&analyze_target(&safe), &[]);
}

#[test]
fn pdc016_guessable_commitment_vs_client_supplied_value() {
    let pdc = CollectionName::new("pdc");
    // Trigger: a hardcoded dictionary word, not supplied by the client.
    let leak = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("settle", [ArgSpec::SeedKey]),
        {
            let pdc = pdc.clone();
            move |stub| {
                stub.put_private_data(&pdc, SEED_KEY, b"approved".to_vec());
                Ok(Vec::new())
            }
        },
    );
    only_rules(&analyze_target(&leak), &["PDC016"]);

    // Non-trigger: the committed value is exactly the client's input —
    // its entropy is the client's own choice.
    let safe = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("store", [ArgSpec::SeedKey, ArgSpec::Literal("42")]),
        move |stub| {
            let v = stub.args()[1].clone();
            stub.put_private_data(&pdc, SEED_KEY, v);
            Ok(Vec::new())
        },
    );
    only_rules(&analyze_target(&safe), &[]);
}

#[test]
fn pdc017_nondeterminism_vs_deterministic_writes() {
    // Trigger: a process-local counter in the write set.
    let counter = AtomicU64::new(0);
    let leak = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("stamp", [ArgSpec::SeedKey]),
        move |stub| {
            let n = counter.fetch_add(1, Ordering::Relaxed);
            stub.put_state("seq", n.to_string().into_bytes());
            Ok(Vec::new())
        },
    );
    only_rules(&analyze_target(&leak), &["PDC017"]);

    // Non-trigger: the same shape with a constant.
    let safe = closure_target(
        &[("pdc", &["Org1MSP", "Org2MSP"])],
        EntryPoint::new("stamp", [ArgSpec::SeedKey]),
        move |stub| {
            stub.put_state("seq", b"constant".to_vec());
            Ok(Vec::new())
        },
    );
    only_rules(&analyze_target(&safe), &[]);
}
