//! The analysis driver: entry-point corpus, identity matrix, and the
//! PDC012–PDC017 flow rules.
//!
//! For every registered entry point the driver runs the chaincode over a
//! deterministic matrix:
//!
//! * **client axis** — once per channel org at an omniscient (all-member)
//!   peer, feeding the sink rules (PDC012/013/015/016) and the
//!   per-recipient response rule (PDC014);
//! * **repeat axis** — twice with identical inputs at the same peer,
//!   feeding PDC017's run-to-run divergence check;
//! * **peer axis** — once per channel org's own peer (its real collection
//!   memberships), feeding PDC017's cross-endorser divergence check.
//!
//! All findings carry a rendered source→sink flow path and reuse the
//! `fabric-lint` registry, renderers, and ordering, so flow output drops
//! into the same text/JSON/SARIF reports as the configuration rules.

use crate::lattice::Label;
use crate::taint::{
    carries, client_identity, input_token, sentinel_for, TaintRun, TaintStub, SEED_KEY,
};
use fabric_chaincode::{ChaincodeDefinition, ChaincodeHandle, StubOp};
use fabric_crypto::{sha256, Hash256};
use fabric_lint::{Finding, Location};
use fabric_types::OrgId;
use std::collections::{BTreeMap, HashSet};
use std::sync::OnceLock;

/// How one invocation argument (or transient entry) is generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgSpec {
    /// The seed key [`SEED_KEY`] — key-position arguments, so reads hit
    /// the seeded sentinel.
    SeedKey,
    /// The high-entropy client-input token.
    Input,
    /// A fixed literal (e.g. an integer a guarded function requires).
    Literal(&'static str),
}

impl ArgSpec {
    /// The concrete bytes this spec generates.
    pub fn bytes(&self) -> Vec<u8> {
        match self {
            ArgSpec::SeedKey => SEED_KEY.as_bytes().to_vec(),
            ArgSpec::Input => input_token(),
            ArgSpec::Literal(s) => s.as_bytes().to_vec(),
        }
    }
}

/// One chaincode entry point and its deterministic inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryPoint {
    /// Function name dispatched on.
    pub function: String,
    /// Positional arguments.
    pub args: Vec<ArgSpec>,
    /// Transient-map entries.
    pub transient: Vec<(String, ArgSpec)>,
}

impl EntryPoint {
    /// An entry point with positional args only.
    pub fn new(function: impl Into<String>, args: impl IntoIterator<Item = ArgSpec>) -> Self {
        EntryPoint {
            function: function.into(),
            args: args.into_iter().collect(),
            transient: Vec::new(),
        }
    }

    /// Adds a transient-map entry.
    pub fn with_transient(mut self, key: impl Into<String>, spec: ArgSpec) -> Self {
        self.transient.push((key.into(), spec));
        self
    }

    fn args_bytes(&self) -> Vec<Vec<u8>> {
        self.args.iter().map(ArgSpec::bytes).collect()
    }

    fn transient_bytes(&self) -> BTreeMap<String, Vec<u8>> {
        self.transient
            .iter()
            .map(|(k, spec)| (k.clone(), spec.bytes()))
            .collect()
    }

    /// Every byte string this invocation supplies — committed values equal
    /// to one of these are the client's own entropy choice, exempt from
    /// the PDC016 guessability check.
    fn input_values(&self) -> HashSet<Vec<u8>> {
        self.args
            .iter()
            .chain(self.transient.iter().map(|(_, spec)| spec))
            .map(ArgSpec::bytes)
            .collect()
    }
}

/// One unit of flow analysis: a runnable chaincode with its definition,
/// entry points, and channel.
#[derive(Clone)]
pub struct FlowTarget {
    /// Subject name used in findings.
    pub name: String,
    /// Artifact URI used in finding locations.
    pub uri: String,
    /// The chaincode under analysis.
    pub chaincode: ChaincodeHandle,
    /// The deployed definition (collections derive the lattice).
    pub definition: ChaincodeDefinition,
    /// The entry-point corpus to drive.
    pub entry_points: Vec<EntryPoint>,
    /// Every organization on the channel (the identity matrix).
    pub channel_orgs: Vec<OrgId>,
}

/// The PR_Hash brute-force dictionary: SHA-256 of every small integer and
/// a status wordlist. Built once per process — exactly the table a
/// non-member peer would precompute to invert low-entropy commitments
/// (the paper's PR_Hash weakness).
fn guessable(value: &[u8]) -> bool {
    static DICT: OnceLock<HashSet<Hash256>> = OnceLock::new();
    let dict = DICT.get_or_init(|| {
        let words = [
            "settled",
            "paid",
            "unpaid",
            "pending",
            "approved",
            "rejected",
            "open",
            "closed",
            "true",
            "false",
            "yes",
            "no",
            "ok",
            "done",
            "complete",
            "active",
            "inactive",
            "sold",
            "transferred",
            "accepted",
            "declined",
            "shipped",
            "delivered",
            "cancelled",
        ];
        let mut set: HashSet<Hash256> = (0..=99_999u32)
            .map(|n| sha256(n.to_string().as_bytes()))
            .collect();
        set.extend(words.iter().map(|w| sha256(w.as_bytes())));
        set
    });
    dict.contains(&sha256(value))
}

fn finding(id: &str, subject: &str, location: Location, message: String) -> Finding {
    let meta = fabric_lint::rule(id).expect("registered flow rule");
    Finding {
        rule_id: meta.id,
        severity: meta.severity,
        subject: subject.to_string(),
        location,
        message,
    }
}

/// Renders the flow path ending at op index `sink_index`: every earlier
/// op that carried the sentinel, the sink op itself, then `sink_desc`.
fn flow_path_to(run: &TaintRun, sentinel: &[u8], sink_index: usize, sink_desc: &str) -> String {
    let mut steps: Vec<String> = run.ops[..sink_index]
        .iter()
        .filter(|op| op.carried().is_some_and(|b| carries(b, sentinel)))
        .map(ToString::to_string)
        .collect();
    steps.push(run.ops[sink_index].to_string());
    steps.push(sink_desc.to_string());
    format!("flow: {}", steps.join(" -> "))
}

/// Analyzes one target, returning sorted, deduplicated findings.
pub fn analyze_target(target: &FlowTarget) -> Vec<Finding> {
    let definition = &target.definition;
    let mut findings = Vec::new();
    let omniscient = TaintStub::omniscient(definition);

    for ep in &target.entry_points {
        let inputs = ep.input_values();

        // Client axis: every channel org invokes at the omniscient peer.
        let mut baseline: Option<TaintRun> = None;
        for org in &target.channel_orgs {
            let run = omniscient.run(
                target.chaincode.as_ref(),
                &ep.function,
                ep.args_bytes(),
                ep.transient_bytes(),
                &client_identity(org),
            );
            check_sinks(target, ep, &run, org, &inputs, &mut findings);
            if baseline.is_none() {
                baseline = Some(run);
            }
        }

        // Repeat axis: identical inputs, identical peer, identical client
        // — any divergence is chaincode-internal nondeterminism.
        if let Some(first) = &baseline {
            let again = omniscient.run(
                target.chaincode.as_ref(),
                &ep.function,
                ep.args_bytes(),
                ep.transient_bytes(),
                &client_identity(&target.channel_orgs[0]),
            );
            if again != *first {
                findings.push(finding(
                    "PDC017",
                    &target.name,
                    Location::artifact(&target.uri),
                    format!(
                        "function '{}' produced divergent simulation results across two \
                         identical runs at the same peer; honest endorsements of this \
                         function can never match",
                        ep.function
                    ),
                ));
            }
        }

        // Peer axis: each org's own peer simulates with its real
        // collection memberships; successful endorsements must agree.
        let peer_runs: Vec<(&OrgId, TaintRun)> = target
            .channel_orgs
            .iter()
            .map(|org| {
                let harness = TaintStub::at_peer(definition, org);
                let run = harness.run(
                    target.chaincode.as_ref(),
                    &ep.function,
                    ep.args_bytes(),
                    ep.transient_bytes(),
                    &client_identity(&target.channel_orgs[0]),
                );
                (org, run)
            })
            .collect();
        let successes: Vec<&(&OrgId, TaintRun)> = peer_runs
            .iter()
            .filter(|(_, run)| run.outcome.is_ok())
            .collect();
        for pair in successes.windows(2) {
            let (org_a, run_a) = pair[0];
            let (org_b, run_b) = pair[1];
            if run_a != run_b {
                findings.push(finding(
                    "PDC017",
                    &target.name,
                    Location::artifact(&target.uri),
                    format!(
                        "function '{}' produced divergent simulation results at the peers \
                         of {} and {}; the endorsement-mismatch precursor the paper's \
                         transaction-flow attacks build on",
                        ep.function, org_a, org_b
                    ),
                ));
                break;
            }
        }
    }

    fabric_lint::sort_and_dedup(&mut findings);
    findings
}

/// The sink rules over one traced run: PDC012 (public state), PDC013
/// (events), PDC014 (response to a non-member client), PDC015
/// (cross-collection downgrade), PDC016 (guessable commitments).
fn check_sinks(
    target: &FlowTarget,
    ep: &EntryPoint,
    run: &TaintRun,
    client_org: &OrgId,
    inputs: &HashSet<Vec<u8>>,
    findings: &mut Vec<Finding>,
) {
    let definition = &target.definition;
    for c in &definition.collections {
        let sentinel = sentinel_for(&c.name);
        let src_label = Label::of_collection(definition, &c.name);
        for (i, op) in run.ops.iter().enumerate() {
            let tainted = op.carried().is_some_and(|b| carries(b, &sentinel));
            match op {
                StubOp::PutState { .. } if tainted => {
                    findings.push(finding(
                        "PDC012",
                        &target.name,
                        Location::in_collection(&target.uri, c.name.as_str()),
                        format!(
                            "function '{}' writes private data of collection '{}' into \
                             public world state, replicated in plaintext to every peer; {}",
                            ep.function,
                            c.name,
                            flow_path_to(run, &sentinel, i, "public world state"),
                        ),
                    ));
                }
                StubOp::SetEvent { name, .. } if tainted => {
                    findings.push(finding(
                        "PDC013",
                        &target.name,
                        Location::in_collection(&target.uri, c.name.as_str()),
                        format!(
                            "function '{}' emits private data of collection '{}' in \
                             chaincode event '{name}', delivered to every block listener; {}",
                            ep.function,
                            c.name,
                            flow_path_to(run, &sentinel, i, "every block listener"),
                        ),
                    ));
                }
                StubOp::PutPrivateData {
                    collection: dest, ..
                } if tainted && dest != &c.name => {
                    let dest_label = Label::of_collection(definition, dest);
                    if !src_label.leq(&dest_label) {
                        findings.push(finding(
                            "PDC015",
                            &target.name,
                            Location::in_collection(&target.uri, c.name.as_str()),
                            format!(
                                "function '{}' copies private data from collection '{}' \
                                 (members {src_label}) into collection '{dest}' (members \
                                 {dest_label}), a laxer audience; {}",
                                ep.function,
                                c.name,
                                flow_path_to(
                                    run,
                                    &sentinel,
                                    i,
                                    &format!("collection '{dest}' members {dest_label}")
                                ),
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
        if let Ok(payload) = &run.outcome {
            if carries(payload, &sentinel) && !src_label.admits(client_org) {
                let steps = run.flow_path(
                    &sentinel,
                    &format!("response payload to the {client_org} client"),
                );
                findings.push(finding(
                    "PDC014",
                    &target.name,
                    Location::in_collection(&target.uri, c.name.as_str()),
                    format!(
                        "function '{}' returns private data of collection '{}' (members \
                         {src_label}) in the response payload to a client of non-member \
                         organization {client_org}; {steps}",
                        ep.function, c.name,
                    ),
                ));
            }
        }
    }

    // PDC016 is collection-independent: every committed value whose
    // PR_Hash a dictionary inverts is reported, unless the client
    // supplied that exact value itself (its own entropy choice).
    for op in &run.ops {
        if let StubOp::PutPrivateData {
            collection,
            key,
            value,
        } = op
        {
            if !inputs.contains(value) && guessable(value) {
                findings.push(finding(
                    "PDC016",
                    &target.name,
                    Location::in_collection(&target.uri, collection.as_str()),
                    format!(
                        "function '{}' commits a low-entropy value to collection \
                         '{collection}' (key {key:?}): a dictionary attack on the \
                         replicated PR_Hash recovers the plaintext at any non-member peer",
                        ep.function,
                    ),
                ));
            }
        }
    }
}

/// Analyzes many targets sequentially. Same output as
/// [`analyze_targets_with`] at any worker count.
pub fn analyze_targets(targets: &[FlowTarget]) -> Vec<Finding> {
    analyze_targets_with(targets, 1)
}

/// Analyzes many targets with an explicit worker count (`0` is treated
/// as `1`), using the same strided, slot-indexed fan-out as the corpus
/// scanner so the merged report is byte-identical at any parallelism.
pub fn analyze_targets_with(targets: &[FlowTarget], workers: usize) -> Vec<Finding> {
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_by(|&a, &b| targets[a].name.cmp(&targets[b].name));
    let workers = workers.clamp(1, order.len().max(1));

    let mut slots: Vec<Option<Vec<Finding>>> = (0..order.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let order = &order;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    // Strided assignment: worker `w` takes slots w, w+workers, …
                    (w..order.len())
                        .step_by(workers)
                        .map(|i| (i, analyze_target(&targets[order[i]])))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("flow worker panicked") {
                slots[i] = Some(result);
            }
        }
    });

    let mut findings: Vec<Finding> = slots
        .into_iter()
        .flat_map(|slot| slot.expect("every slot analyzed"))
        .collect();
    fabric_lint::sort_and_dedup(&mut findings);
    findings
}
