//! Shadow-tracking execution: sentinel seeding, traced runs, and
//! flow-path rendering.
//!
//! The tracker plants one high-entropy sentinel per collection in a
//! fresh world state, runs the chaincode with the stub's op log enabled,
//! and derives provenance by scanning every recorded operation (and the
//! response payload) for sentinel bytes. Dynamic taint via byte-matching
//! extends the `lint::probe` idea from one leak channel (the payload) to
//! the full sink surface: public writes, events, cross-collection
//! copies, and responses.

use fabric_chaincode::{
    Chaincode, ChaincodeDefinition, ChaincodeError, ChaincodeStub, SimulationResult, StubOp,
};
use fabric_crypto::sha256;
use fabric_ledger::WorldState;
use fabric_types::{CollectionName, Identity, OrgId, Proposal, Role, Version};
use std::collections::{BTreeMap, HashSet};

/// The private key every collection is seeded under (and the key entry
/// points pass as their key argument, so reads find the seed).
pub const SEED_KEY: &str = "__flow_seed__";

/// The sentinel seeded as `collection`'s private value: unique per
/// collection (so cross-collection flows are attributable to their
/// source) and high-entropy (a hash-derived infix), so honest payloads
/// cannot contain it by accident.
pub fn sentinel_for(collection: &CollectionName) -> Vec<u8> {
    let digest = sha256(collection.as_str().as_bytes()).to_hex();
    format!("__flow:{}:{}__", collection.as_str(), &digest[..16]).into_bytes()
}

/// A high-entropy marker for client-supplied inputs. Distinct from every
/// collection sentinel, so data the *client* sent is never mistaken for
/// data read out of a collection.
pub fn input_token() -> Vec<u8> {
    let digest = sha256(b"__flow_input__").to_hex();
    format!("__flow:input:{}__", &digest[..16]).into_bytes()
}

/// Substring taint check.
pub fn carries(haystack: &[u8], sentinel: &[u8]) -> bool {
    haystack.len() >= sentinel.len() && haystack.windows(sentinel.len()).any(|w| w == sentinel)
}

/// One traced simulation: outcome, rwsets, and the shim-call log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintRun {
    /// The chaincode's response payload, or its error.
    pub outcome: Result<Vec<u8>, ChaincodeError>,
    /// The accumulated rwsets.
    pub results: SimulationResult,
    /// Every shim call, in execution order.
    pub ops: Vec<StubOp>,
}

impl TaintRun {
    /// The rendered taint trace for `sentinel`: the `Display` form of
    /// every op that carried it, in order. The first element is the
    /// source (the private read that introduced the taint).
    pub fn taint_steps(&self, sentinel: &[u8]) -> Vec<String> {
        self.ops
            .iter()
            .filter(|op| op.carried().is_some_and(|bytes| carries(bytes, sentinel)))
            .map(ToString::to_string)
            .collect()
    }

    /// Renders a complete source→sink flow path for `sentinel` ending at
    /// `sink` (a sink description such as `public world state`). Op
    /// renderings are value-free, so paths are deterministic even for
    /// nondeterministic chaincode.
    pub fn flow_path(&self, sentinel: &[u8], sink: &str) -> String {
        let mut steps = self.taint_steps(sentinel);
        steps.push(sink.to_string());
        format!("flow: {}", steps.join(" -> "))
    }
}

/// The shadow-tracking harness around [`ChaincodeStub`]: a seeded world
/// state plus one peer's collection memberships. Each [`run`](Self::run)
/// builds a fresh op-logging stub over the same snapshot, so repeated
/// runs are independent and comparable (the PDC017 determinism check).
#[derive(Debug)]
pub struct TaintStub<'a> {
    definition: &'a ChaincodeDefinition,
    state: WorldState,
    memberships: HashSet<CollectionName>,
}

impl<'a> TaintStub<'a> {
    /// A harness at an *omniscient* peer: member of every collection, so
    /// all code paths behind membership guards execute. Used for the
    /// sink-flow rules (PDC012–PDC016).
    pub fn omniscient(definition: &'a ChaincodeDefinition) -> Self {
        let memberships = definition
            .collections
            .iter()
            .map(|c| c.name.clone())
            .collect();
        TaintStub {
            definition,
            state: seeded_state(definition),
            memberships,
        }
    }

    /// A harness at `org`'s peer: member of exactly the collections the
    /// definition grants `org`. Used for the per-peer endorsement axis
    /// (PDC017).
    pub fn at_peer(definition: &'a ChaincodeDefinition, org: &OrgId) -> Self {
        let memberships = definition.memberships_of(org).into_iter().collect();
        TaintStub {
            definition,
            state: seeded_state(definition),
            memberships,
        }
    }

    /// Runs one traced invocation as `client`.
    pub fn run(
        &self,
        chaincode: &dyn Chaincode,
        function: &str,
        args: Vec<Vec<u8>>,
        transient: BTreeMap<String, Vec<u8>>,
        client: &Identity,
    ) -> TaintRun {
        let proposal = Proposal::new(
            "flow-channel",
            self.definition.id.clone(),
            function,
            args,
            transient,
            client.clone(),
            1,
        );
        let mut stub =
            ChaincodeStub::new(&self.state, self.definition, &self.memberships, &proposal);
        stub.enable_op_log();
        let outcome = chaincode.invoke(&mut stub);
        let (results, ops) = stub.into_results_and_ops();
        TaintRun {
            outcome,
            results,
            ops,
        }
    }
}

/// A deterministic client identity from `org`.
pub fn client_identity(org: &OrgId) -> Identity {
    let keypair = fabric_crypto::Keypair::generate_from_seed(0xf10a);
    Identity::new(org.clone(), Role::Client, keypair.public_key())
}

/// A world state with every collection seeded: its sentinel under
/// [`SEED_KEY`] (which also populates the replicated hashed store, so
/// `GetPrivateDataHash` resolves at every peer, as on Fabric).
fn seeded_state(definition: &ChaincodeDefinition) -> WorldState {
    let mut state = WorldState::new();
    for c in &definition.collections {
        state.put_private(
            &definition.id,
            &c.name,
            SEED_KEY,
            sentinel_for(&c.name),
            Version::new(1, 0),
        );
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_chaincode::samples::LeakyEscrow;
    use fabric_types::CollectionConfig;

    #[test]
    fn sentinels_are_distinct_per_collection_and_from_inputs() {
        let a = sentinel_for(&CollectionName::new("escrowCollection"));
        let b = sentinel_for(&CollectionName::new("auditCollection"));
        assert_ne!(a, b);
        assert!(!carries(&a, &b));
        assert!(!carries(&a, &input_token()));
        assert!(carries(&[b"x".as_slice(), &a, b"y"].concat(), &a));
    }

    #[test]
    fn omniscient_run_traces_a_leak_end_to_end() {
        let def = LeakyEscrow::default_definition();
        let harness = TaintStub::omniscient(&def);
        let escrow = CollectionName::new("escrowCollection");
        let run = harness.run(
            &LeakyEscrow::default(),
            "publish",
            vec![SEED_KEY.as_bytes().to_vec()],
            BTreeMap::new(),
            &client_identity(&OrgId::new("Org1MSP")),
        );
        assert!(run.outcome.is_ok());
        let sentinel = sentinel_for(&escrow);
        let steps = run.taint_steps(&sentinel);
        assert_eq!(steps.len(), 2, "{steps:?}");
        assert!(steps[0].starts_with("GetPrivateData(escrowCollection"));
        assert!(steps[1].starts_with("PutState"));
        let path = run.flow_path(&sentinel, "public world state");
        assert!(path.starts_with("flow: GetPrivateData"));
        assert!(path.ends_with("-> public world state"));
    }

    #[test]
    fn peer_harness_respects_memberships() {
        let def = LeakyEscrow::default_definition();
        // Org3 is only an audit member: reading escrow at its peer fails.
        let harness = TaintStub::at_peer(&def, &OrgId::new("Org3MSP"));
        let run = harness.run(
            &LeakyEscrow::default(),
            "peek",
            vec![SEED_KEY.as_bytes().to_vec()],
            BTreeMap::new(),
            &client_identity(&OrgId::new("Org3MSP")),
        );
        assert!(matches!(
            run.outcome,
            Err(ChaincodeError::PrivateDataUnavailable { .. })
        ));
        assert!(run.ops.is_empty());
    }

    #[test]
    fn seeded_state_serves_private_hashes_everywhere() {
        // put_private populates the replicated hashed store, so the
        // legitimate GetPrivateDataHash pattern works under analysis.
        let def = ChaincodeDefinition::new("cc").with_collection(CollectionConfig::membership_of(
            "pdc",
            &[OrgId::new("Org1MSP")],
        ));
        let harness = TaintStub::at_peer(&def, &OrgId::new("Org2MSP"));
        let run = harness.run(
            &|stub: &mut ChaincodeStub<'_>| {
                let found = stub
                    .get_private_data_hash(&CollectionName::new("pdc"), SEED_KEY)
                    .is_some();
                Ok(if found {
                    b"yes".to_vec()
                } else {
                    b"no".to_vec()
                })
            },
            "probe",
            vec![],
            BTreeMap::new(),
            &client_identity(&OrgId::new("Org2MSP")),
        );
        assert_eq!(run.outcome.unwrap(), b"yes");
    }
}
