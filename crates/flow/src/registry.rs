//! The built-in analysis registry: every runnable sample chaincode with
//! its deployment definition and entry-point corpus.
//!
//! Flow analysis needs *executable* chaincode — unlike the text scanner,
//! it drives real invocations through the stub. The registry pairs each
//! sample in `fabric_chaincode::samples` with the definition it ships
//! with and the deterministic inputs that exercise its functions; the
//! `analyze lint --flow` subcommand and the self-analysis regression
//! tests both run over exactly this set.

use crate::driver::{ArgSpec, EntryPoint, FlowTarget};
use fabric_chaincode::samples::{
    Guard, GuardedPdc, LeakyEscrow, SaccPrivate, SaccPrivateFixed, SecuredTrade,
};
use fabric_chaincode::ChaincodeDefinition;
use fabric_types::{CollectionConfig, OrgId};
use std::sync::Arc;

/// The analysis channel: three organizations, so every sample collection
/// has at least one non-member (the PDC014 recipient axis and the PDC017
/// peer axis need one).
pub fn channel_orgs() -> Vec<OrgId> {
    vec![
        OrgId::new("Org1MSP"),
        OrgId::new("Org2MSP"),
        OrgId::new("Org3MSP"),
    ]
}

/// Every built-in sample as a [`FlowTarget`], in name order.
pub fn sample_registry() -> Vec<FlowTarget> {
    let key = || ArgSpec::SeedKey;
    let mut targets = vec![
        FlowTarget {
            name: "guarded".into(),
            uri: "sample:guarded".into(),
            chaincode: Arc::new(GuardedPdc::new("PDC1", Guard::LessThan(15), Guard::Always)),
            definition: ChaincodeDefinition::new("guarded").with_collection(
                CollectionConfig::membership_of(
                    "PDC1",
                    &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
                ),
            ),
            entry_points: vec![
                EntryPoint::new("read", [key()]),
                // 5 passes the `< 15` write guard; a literal input, so the
                // committed value is exempt from PDC016 (client entropy).
                EntryPoint::new("write", [key(), ArgSpec::Literal("5")]),
                EntryPoint::new("add", [key(), ArgSpec::Literal("2")]),
                EntryPoint::new("delete", [key()]),
            ],
            channel_orgs: channel_orgs(),
        },
        FlowTarget {
            name: "leaky_escrow".into(),
            uri: "sample:leaky_escrow".into(),
            chaincode: Arc::new(LeakyEscrow::default()),
            definition: LeakyEscrow::default_definition(),
            entry_points: vec![
                EntryPoint::new("publish", [key()]),
                EntryPoint::new("announce", [key()]),
                EntryPoint::new("peek", [key()]),
                EntryPoint::new("mirror", [key()]),
                EntryPoint::new("settle", [key()]),
                EntryPoint::new("stamp", [key()]),
            ],
            channel_orgs: channel_orgs(),
        },
        FlowTarget {
            name: "sacc".into(),
            uri: "sample:sacc".into(),
            chaincode: Arc::new(SaccPrivate::default()),
            definition: sacc_definition(),
            entry_points: vec![
                EntryPoint::new("set", [key(), ArgSpec::Input]),
                EntryPoint::new("get", [key()]),
            ],
            channel_orgs: channel_orgs(),
        },
        FlowTarget {
            name: "sacc_fixed".into(),
            uri: "sample:sacc_fixed".into(),
            chaincode: Arc::new(SaccPrivateFixed::default()),
            definition: sacc_definition(),
            entry_points: vec![
                EntryPoint::new("set", [key()]).with_transient("value", ArgSpec::Input),
                EntryPoint::new("get", [key()]),
            ],
            channel_orgs: channel_orgs(),
        },
        FlowTarget {
            name: "secured_trade".into(),
            uri: "sample:secured_trade".into(),
            chaincode: Arc::new(SecuredTrade::new("sellerCollection")),
            definition: ChaincodeDefinition::new("trade")
                .with_endorsement_policy("ANY Endorsement")
                .with_collection(
                    CollectionConfig::membership_of("sellerCollection", &[OrgId::new("Org1MSP")])
                        .with_endorsement_policy("OR('Org1MSP.peer')"),
                ),
            entry_points: vec![
                EntryPoint::new("offer", [key()]).with_transient("appraisal", ArgSpec::Input),
                EntryPoint::new("verify", [key()]).with_transient("claimed", ArgSpec::Input),
                EntryPoint::new("exists", [key()]),
            ],
            channel_orgs: channel_orgs(),
        },
    ];
    targets.sort_by(|a, b| a.name.cmp(&b.name));
    targets
}

/// The definition both sacc variants deploy with (the paper's project
/// used a single-org `demo` collection).
fn sacc_definition() -> ChaincodeDefinition {
    ChaincodeDefinition::new("sacc").with_collection(CollectionConfig::membership_of(
        "demo",
        &[OrgId::new("Org1MSP")],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_named_uniquely() {
        let targets = sample_registry();
        let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
        assert!(names.contains(&"leaky_escrow"));
    }

    #[test]
    fn every_target_has_entry_points_and_a_channel() {
        for t in sample_registry() {
            assert!(!t.entry_points.is_empty(), "{}", t.name);
            assert_eq!(t.channel_orgs, channel_orgs(), "{}", t.name);
            assert!(!t.definition.collections.is_empty(), "{}", t.name);
        }
    }
}
