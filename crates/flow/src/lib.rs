//! `fabric-flow` — information-flow taint analysis for chaincode
//! private-data leakage.
//!
//! The paper's attacks all reduce to one root cause: private-collection
//! data flowing to a less-private sink. `fabric-lint` checks the
//! *configuration* preconditions (PDC001–PDC011); this crate analyzes
//! the *chaincode*. It derives a security [`Label`] lattice from the
//! collection definitions (label = member-org set, public state = ⊥),
//! runs each registered entry point through a shadow-tracking
//! [`TaintStub`] over a deterministic input corpus and per-identity
//! matrix, and reports every flow that loses confidentiality:
//!
//! | rule | flow |
//! |---|---|
//! | `PDC012` | private data → public world state |
//! | `PDC013` | private data → chaincode event |
//! | `PDC014` | private data → response payload of a non-member client |
//! | `PDC015` | stricter collection → laxer collection (downgrade) |
//! | `PDC016` | low-entropy commitment (brute-forceable PR_Hash) |
//! | `PDC017` | endorsement nondeterminism (rwset divergence) |
//!
//! Findings carry a rendered source→sink flow path and reuse the
//! `fabric-lint` registry and renderers, so they land in the same
//! text/JSON/SARIF reports — and [`analyze_targets_with`] fans out over
//! targets with the same deterministic stride the corpus scanner uses.

mod driver;
mod lattice;
mod registry;
mod taint;

pub use driver::{
    analyze_target, analyze_targets, analyze_targets_with, ArgSpec, EntryPoint, FlowTarget,
};
pub use lattice::Label;
pub use registry::{channel_orgs, sample_registry};
pub use taint::{
    carries, client_identity, input_token, sentinel_for, TaintRun, TaintStub, SEED_KEY,
};
