//! The security lattice derived from collection definitions.
//!
//! A datum's label is the set of organizations entitled to see it:
//! public state is [`Label::Public`] (everyone — the lattice bottom), and
//! data from a private collection carries [`Label::Members`] of the
//! collection's member-org set. *Fewer* members means *more*
//! confidential, so the partial order runs opposite to set inclusion:
//! `Members(A) ⊑ Members(B)` iff `B ⊆ A`, with `Members(∅)` (no one
//! entitled) as top. Combining data from two sources joins their labels —
//! the intersection of the member sets, since only orgs entitled to both
//! inputs are entitled to the mix.
//!
//! A flow from source label `src` into a sink whose audience is labeled
//! `sink` is safe iff `src ⊑ sink` — everyone who can observe the sink
//! was already entitled to the source.

use fabric_chaincode::ChaincodeDefinition;
use fabric_policy::SignaturePolicy;
use fabric_types::{CollectionName, OrgId};
use std::collections::BTreeSet;
use std::fmt;

/// A confidentiality label: which organizations may see the datum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    /// Public data — visible to the whole channel (lattice bottom).
    Public,
    /// Private data visible only to these member organizations.
    Members(BTreeSet<OrgId>),
}

impl Label {
    /// The label of a member-org list.
    pub fn members<I, O>(orgs: I) -> Self
    where
        I: IntoIterator<Item = O>,
        O: Into<OrgId>,
    {
        Label::Members(orgs.into_iter().map(Into::into).collect())
    }

    /// The label of `collection` under `definition`: its membership
    /// policy's org set. Unknown collections and unparsable membership
    /// policies yield `Members(∅)` — maximally confidential, so analysis
    /// errs toward reporting rather than missing a flow.
    pub fn of_collection(definition: &ChaincodeDefinition, collection: &CollectionName) -> Self {
        let orgs = definition
            .collection(collection)
            .and_then(|cfg| SignaturePolicy::parse(&cfg.member_policy).ok())
            .map(|p| p.organizations().into_iter().collect())
            .unwrap_or_default();
        Label::Members(orgs)
    }

    /// Least upper bound: the label of data combining both inputs. Only
    /// organizations entitled to *both* sources are entitled to the mix,
    /// so member sets intersect; `Public` is the identity.
    pub fn join(&self, other: &Label) -> Label {
        match (self, other) {
            (Label::Public, x) | (x, Label::Public) => x.clone(),
            (Label::Members(a), Label::Members(b)) => {
                Label::Members(a.intersection(b).cloned().collect())
            }
        }
    }

    /// The partial order: `self ⊑ other` iff every organization that may
    /// see `other`-labeled data may also see `self`-labeled data — i.e.
    /// flowing `self` data into an `other`-audience sink loses nothing.
    pub fn leq(&self, other: &Label) -> bool {
        match (self, other) {
            (Label::Public, _) => true,
            (Label::Members(_), Label::Public) => false,
            (Label::Members(a), Label::Members(b)) => b.is_subset(a),
        }
    }

    /// Whether a single organization may observe data with this label.
    pub fn admits(&self, org: &OrgId) -> bool {
        match self {
            Label::Public => true,
            Label::Members(orgs) => orgs.contains(org),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Public => f.write_str("public"),
            Label::Members(orgs) => {
                let names: Vec<&str> = orgs.iter().map(OrgId::as_str).collect();
                write!(f, "{{{}}}", names.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::CollectionConfig;

    fn m(orgs: &[&str]) -> Label {
        Label::members(orgs.iter().copied())
    }

    #[test]
    fn public_is_bottom() {
        assert!(Label::Public.leq(&Label::Public));
        assert!(Label::Public.leq(&m(&["Org1MSP"])));
        assert!(!m(&["Org1MSP"]).leq(&Label::Public));
    }

    #[test]
    fn empty_member_set_is_top() {
        let top = m(&[]);
        assert!(Label::Public.leq(&top));
        assert!(m(&["Org1MSP"]).leq(&top));
        assert!(m(&["Org1MSP", "Org2MSP"]).leq(&top));
        assert!(!top.leq(&m(&["Org1MSP"])));
    }

    #[test]
    fn subset_collections_order_correctly() {
        // {Org1} is strictly more confidential than {Org1, Org2}: data
        // may flow from the wider set into the narrower one, not back.
        let narrow = m(&["Org1MSP"]);
        let wide = m(&["Org1MSP", "Org2MSP"]);
        assert!(wide.leq(&narrow));
        assert!(!narrow.leq(&wide));
        // Reflexive.
        assert!(narrow.leq(&narrow));
        assert!(wide.leq(&wide));
    }

    #[test]
    fn disjoint_org_sets_are_incomparable() {
        let a = m(&["Org1MSP", "Org2MSP"]);
        let b = m(&["Org1MSP", "Org3MSP"]);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let fully_disjoint = m(&["Org9MSP"]);
        assert!(!a.leq(&fully_disjoint));
        assert!(!fully_disjoint.leq(&a));
    }

    #[test]
    fn join_is_public_identity_and_intersects_members() {
        let a = m(&["Org1MSP", "Org2MSP"]);
        assert_eq!(Label::Public.join(&a), a);
        assert_eq!(a.join(&Label::Public), a);
        assert_eq!(Label::Public.join(&Label::Public), Label::Public);

        let b = m(&["Org2MSP", "Org3MSP"]);
        assert_eq!(a.join(&b), m(&["Org2MSP"]));
        // Disjoint sources join to top: nobody is entitled to the mix.
        assert_eq!(m(&["Org1MSP"]).join(&m(&["Org3MSP"])), m(&[]));
    }

    #[test]
    fn join_is_commutative_idempotent_and_upper_bound() {
        let labels = [
            Label::Public,
            m(&["Org1MSP"]),
            m(&["Org1MSP", "Org2MSP"]),
            m(&["Org2MSP", "Org3MSP"]),
            m(&[]),
        ];
        for a in &labels {
            assert_eq!(a.join(a), *a);
            for b in &labels {
                let j = a.join(b);
                assert_eq!(j, b.join(a));
                assert!(a.leq(&j), "{a} ⋢ {a} ⊔ {b}");
                assert!(b.leq(&j), "{b} ⋢ {a} ⊔ {b}");
            }
        }
    }

    #[test]
    fn collection_labels_come_from_membership_policies() {
        let def = ChaincodeDefinition::new("cc").with_collection(CollectionConfig::membership_of(
            "pdc",
            &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
        ));
        assert_eq!(
            Label::of_collection(&def, &CollectionName::new("pdc")),
            m(&["Org1MSP", "Org2MSP"])
        );
        // Unknown collection: maximally confidential.
        assert_eq!(
            Label::of_collection(&def, &CollectionName::new("ghost")),
            m(&[])
        );
    }

    #[test]
    fn admits_checks_one_observer() {
        assert!(Label::Public.admits(&OrgId::new("AnyMSP")));
        let a = m(&["Org1MSP"]);
        assert!(a.admits(&OrgId::new("Org1MSP")));
        assert!(!a.admits(&OrgId::new("Org2MSP")));
    }
}
