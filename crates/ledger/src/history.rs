//! The history database: every committed write to every public key, in
//! commit order (Fabric's `GetHistoryForKey` index).

use fabric_types::{ChaincodeId, TxId, Version};
use std::collections::BTreeMap;

/// One historical write to a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// The transaction that performed the write.
    pub tx_id: TxId,
    /// Commit height of the write.
    pub version: Version,
    /// The written value; `None` for deletes.
    pub value: Option<Vec<u8>>,
    /// Whether the write was a delete.
    pub is_delete: bool,
}

/// Append-only per-key write history for public data.
#[derive(Debug, Clone, Default)]
pub struct HistoryDb {
    entries: BTreeMap<(ChaincodeId, String), Vec<HistoryEntry>>,
}

impl HistoryDb {
    /// An empty history database.
    pub fn new() -> Self {
        HistoryDb::default()
    }

    /// Records one committed write.
    pub fn record(
        &mut self,
        ns: &ChaincodeId,
        key: &str,
        tx_id: &TxId,
        version: Version,
        value: Option<Vec<u8>>,
        is_delete: bool,
    ) {
        self.entries
            .entry((ns.clone(), key.to_string()))
            .or_default()
            .push(HistoryEntry {
                tx_id: tx_id.clone(),
                version,
                value,
                is_delete,
            });
    }

    /// The full write history of a key, oldest first.
    pub fn key_history(&self, ns: &ChaincodeId, key: &str) -> &[HistoryEntry] {
        self.entries
            .get(&(ns.clone(), key.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of keys with recorded history.
    pub fn keys_tracked(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> ChaincodeId {
        ChaincodeId::new("cc")
    }

    #[test]
    fn records_in_commit_order() {
        let mut db = HistoryDb::new();
        db.record(
            &ns(),
            "k",
            &TxId::new("t1"),
            Version::new(1, 0),
            Some(b"a".to_vec()),
            false,
        );
        db.record(
            &ns(),
            "k",
            &TxId::new("t2"),
            Version::new(2, 0),
            Some(b"b".to_vec()),
            false,
        );
        db.record(&ns(), "k", &TxId::new("t3"), Version::new(3, 0), None, true);
        let h = db.key_history(&ns(), "k");
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].value.as_deref(), Some(b"a".as_slice()));
        assert_eq!(h[1].tx_id, TxId::new("t2"));
        assert!(h[2].is_delete);
        assert_eq!(db.keys_tracked(), 1);
    }

    #[test]
    fn unknown_key_has_empty_history() {
        let db = HistoryDb::new();
        assert!(db.key_history(&ns(), "ghost").is_empty());
    }

    #[test]
    fn namespaces_are_isolated() {
        let mut db = HistoryDb::new();
        db.record(
            &ns(),
            "k",
            &TxId::new("t1"),
            Version::new(1, 0),
            Some(vec![1]),
            false,
        );
        assert!(db.key_history(&ChaincodeId::new("other"), "k").is_empty());
    }
}
