//! The hash-chained block store ("the blockchain" half of the ledger).

use fabric_crypto::Hash256;
use fabric_types::{Block, Transaction, TxId, TxValidationCode};
use std::collections::HashMap;
use std::fmt;

/// Errors appending to a [`BlockStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockStoreError {
    /// The block number is not exactly one past the current height.
    NonSequentialNumber {
        /// Expected block number.
        expected: u64,
        /// Number found in the header.
        found: u64,
    },
    /// The block's `previous_hash` does not match the chain tip.
    BrokenChain {
        /// Hash of the current tip.
        expected: Hash256,
        /// `previous_hash` found in the header.
        found: Hash256,
    },
    /// The header's data hash does not match the transactions.
    DataHashMismatch,
}

impl fmt::Display for BlockStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockStoreError::NonSequentialNumber { expected, found } => {
                write!(f, "expected block number {expected}, found {found}")
            }
            BlockStoreError::BrokenChain { .. } => {
                write!(f, "previous-hash does not match chain tip")
            }
            BlockStoreError::DataHashMismatch => write!(f, "data hash does not match transactions"),
        }
    }
}

impl std::error::Error for BlockStoreError {}

/// An append-only, hash-verified chain of blocks with a tx-id index.
///
/// Every peer in a channel holds one; since blocks contain transactions in
/// full — including the plaintext `payload` of proposal responses — any
/// peer can mine its local block store for leaked private data (§IV-B).
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    blocks: Vec<Block>,
    /// `tx_id -> (block number, tx index)`.
    tx_index: HashMap<TxId, (u64, usize)>,
}

impl BlockStore {
    /// An empty chain.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Current chain height (number of blocks).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Hash of the chain tip, or the all-zero hash for an empty chain
    /// (used as `previous_hash` of the genesis block).
    pub fn tip_hash(&self) -> Hash256 {
        self.blocks.last().map(|b| b.hash()).unwrap_or_default()
    }

    /// Verifies that `block` would extend this chain: sequential number,
    /// matching previous-hash, and consistent data hash. Borrows only, so
    /// callers can pre-validate without cloning the store.
    ///
    /// # Errors
    ///
    /// Returns [`BlockStoreError`] describing the first failing check.
    pub fn check_extends(&self, block: &Block) -> Result<(), BlockStoreError> {
        let expected_number = self.height();
        if block.header.number != expected_number {
            return Err(BlockStoreError::NonSequentialNumber {
                expected: expected_number,
                found: block.header.number,
            });
        }
        let expected_prev = self.tip_hash();
        if block.header.previous_hash != expected_prev {
            return Err(BlockStoreError::BrokenChain {
                expected: expected_prev,
                found: block.header.previous_hash,
            });
        }
        if !block.data_hash_is_consistent() {
            return Err(BlockStoreError::DataHashMismatch);
        }
        Ok(())
    }

    /// Appends a block after verifying number, chain hash, and data hash.
    ///
    /// # Errors
    ///
    /// Returns [`BlockStoreError`] when any structural check fails; the
    /// store is unchanged on error.
    pub fn append(&mut self, block: Block) -> Result<(), BlockStoreError> {
        self.check_extends(&block)?;
        self.append_unchecked(block);
        Ok(())
    }

    /// Appends a block whose structural checks the caller has already run
    /// via [`BlockStore::check_extends`] on this same store and block.
    ///
    /// The commit pipeline validates linkage once up front (before any
    /// state mutation) and appends after the per-transaction merge; this
    /// entry point lets it skip re-hashing the whole transaction list a
    /// second time. Debug builds still assert the contract.
    pub fn append_unchecked(&mut self, block: Block) {
        debug_assert!(
            self.check_extends(&block).is_ok(),
            "append_unchecked caller must have verified check_extends"
        );
        for (i, tx) in block.transactions.iter().enumerate() {
            self.tx_index
                .insert(tx.tx_id.clone(), (block.header.number, i));
        }
        self.blocks.push(block);
    }

    /// The block at `number`, if present.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks.get(number as usize)
    }

    /// Looks up a transaction and its validation code by ID.
    pub fn transaction(&self, tx_id: &TxId) -> Option<(&Transaction, Option<TxValidationCode>)> {
        let (block_num, idx) = *self.tx_index.get(tx_id)?;
        let block = self.block(block_num)?;
        let tx = block.transactions.get(idx)?;
        Some((tx, block.validation_code(idx)))
    }

    /// Whether a transaction ID has been committed (in any block, valid or
    /// not — Fabric stores invalid transactions too, flagged in metadata).
    pub fn contains_tx(&self, tx_id: &TxId) -> bool {
        self.tx_index.contains_key(tx_id)
    }

    /// Iterates blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Verifies the whole chain's hashes from genesis; `true` when intact.
    pub fn verify_chain(&self) -> bool {
        let mut prev: Option<&Block> = None;
        for block in &self.blocks {
            if !block.data_hash_is_consistent() {
                return false;
            }
            match prev {
                None => {
                    if block.header.number != 0 || block.header.previous_hash != Hash256::default()
                    {
                        return false;
                    }
                }
                Some(p) => {
                    if !block.chains_onto(p) {
                        return false;
                    }
                }
            }
            prev = Some(block);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(number: u64, prev: Hash256) -> Block {
        Block::new(number, prev, vec![])
    }

    #[test]
    fn append_and_chain_verification() {
        let mut store = BlockStore::new();
        assert_eq!(store.height(), 0);
        let b0 = block(0, Hash256::default());
        let h0 = b0.hash();
        store.append(b0).unwrap();
        store.append(block(1, h0)).unwrap();
        assert_eq!(store.height(), 2);
        assert!(store.verify_chain());
    }

    #[test]
    fn rejects_non_sequential_number() {
        let mut store = BlockStore::new();
        let err = store.append(block(5, Hash256::default())).unwrap_err();
        assert_eq!(
            err,
            BlockStoreError::NonSequentialNumber {
                expected: 0,
                found: 5
            }
        );
    }

    #[test]
    fn rejects_broken_chain() {
        let mut store = BlockStore::new();
        store.append(block(0, Hash256::default())).unwrap();
        let err = store
            .append(block(1, fabric_crypto::sha256(b"wrong")))
            .unwrap_err();
        assert!(matches!(err, BlockStoreError::BrokenChain { .. }));
        assert_eq!(store.height(), 1);
    }

    #[test]
    fn rejects_tampered_data_hash() {
        let mut store = BlockStore::new();
        let mut b = block(0, Hash256::default());
        b.header.data_hash = fabric_crypto::sha256(b"tampered");
        assert_eq!(store.append(b), Err(BlockStoreError::DataHashMismatch));
    }

    #[test]
    fn check_extends_matches_append_without_mutating() {
        let mut store = BlockStore::new();
        let b0 = block(0, Hash256::default());
        let h0 = b0.hash();
        assert_eq!(store.check_extends(&b0), Ok(()));
        store.append(b0).unwrap();

        let good = block(1, h0);
        assert_eq!(store.check_extends(&good), Ok(()));
        let broken = block(1, fabric_crypto::sha256(b"wrong"));
        assert!(matches!(
            store.check_extends(&broken),
            Err(BlockStoreError::BrokenChain { .. })
        ));
        let skipped = block(7, h0);
        assert!(matches!(
            store.check_extends(&skipped),
            Err(BlockStoreError::NonSequentialNumber { .. })
        ));
        // The store itself is untouched by any of the checks.
        assert_eq!(store.height(), 1);
    }

    #[test]
    fn missing_lookups_return_none() {
        let store = BlockStore::new();
        assert!(store.block(0).is_none());
        assert!(store.transaction(&TxId::new("nope")).is_none());
        assert!(!store.contains_tx(&TxId::new("nope")));
    }
}
