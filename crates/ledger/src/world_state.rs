//! The versioned world state, including private-data side databases.

use fabric_crypto::{sha256, Hash256};
use fabric_types::{
    ChaincodeId, CollectionName, CollectionPvtRwSet, HashedRead, KvRead, KvRwSet, MetadataWrite,
    Version,
};
use std::collections::BTreeMap;
use std::fmt;

/// A committed value with the `(block, tx)` version that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The stored value.
    pub value: Vec<u8>,
    /// Height of the committing transaction.
    pub version: Version,
}

/// Key of a public state entry: `(namespace, key)`.
type PubKey = (ChaincodeId, String);
/// Key of a plaintext private entry: `(namespace, collection, key)`.
type PvtKey = (ChaincodeId, CollectionName, String);
/// Key of a hashed private entry: `(namespace, collection, hash(key))`.
type HashKey = (ChaincodeId, CollectionName, Hash256);

/// The reason an MVCC check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvccViolation {
    /// Namespace of the conflicting read.
    pub namespace: ChaincodeId,
    /// Collection of the conflicting read, `None` for public data.
    pub collection: Option<CollectionName>,
    /// The conflicting key (hex of the key hash for private reads).
    pub key: String,
    /// Version recorded in the read set.
    pub expected: Option<Version>,
    /// Version currently in the world state.
    pub found: Option<Version>,
}

impl fmt::Display for MvccViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mvcc conflict on {}/{}{}: read {:?}, state has {:?}",
            self.namespace,
            self.collection
                .as_ref()
                .map(|c| format!("{c}/"))
                .unwrap_or_default(),
            self.key,
            self.expected,
            self.found
        )
    }
}

/// The world state database of one peer for one channel.
///
/// Holds three maps, mirroring Fabric's state layout at a peer:
/// public data, plaintext private data (only populated for collections the
/// peer is a member of), and hashed private data (populated at every peer).
#[derive(Debug, Clone, Default)]
pub struct WorldState {
    public: BTreeMap<PubKey, VersionedValue>,
    private: BTreeMap<PvtKey, VersionedValue>,
    hashed: BTreeMap<HashKey, (Hash256, Version)>,
    /// Key-level endorsement policies (state-based endorsement metadata).
    validation_params: BTreeMap<PubKey, String>,
}

impl WorldState {
    /// An empty world state.
    pub fn new() -> Self {
        WorldState::default()
    }

    // ---- public data ----

    /// Reads a public key: `(value, version)` or `None` when absent.
    pub fn get_public(&self, ns: &ChaincodeId, key: &str) -> Option<&VersionedValue> {
        self.public.get(&(ns.clone(), key.to_string()))
    }

    /// Applies a public write at `version`.
    pub fn put_public(&mut self, ns: &ChaincodeId, key: &str, value: Vec<u8>, version: Version) {
        self.public.insert(
            (ns.clone(), key.to_string()),
            VersionedValue { value, version },
        );
    }

    /// Deletes a public key.
    pub fn delete_public(&mut self, ns: &ChaincodeId, key: &str) {
        self.public.remove(&(ns.clone(), key.to_string()));
    }

    /// Iterates public entries of a namespace in key order.
    pub fn public_range<'a>(
        &'a self,
        ns: &'a ChaincodeId,
    ) -> impl Iterator<Item = (&'a str, &'a VersionedValue)> + 'a {
        self.public
            .range((ns.clone(), String::new())..)
            .take_while(move |((n, _), _)| n == ns)
            .map(|((_, k), v)| (k.as_str(), v))
    }

    // ---- plaintext private data (collection members only) ----

    /// Reads plaintext private data. Returns `None` when this peer does not
    /// store the collection (non-member) or the key is absent — the caller
    /// distinguishes the two through collection membership, exactly like
    /// Fabric's `GetPrivateData` which errors at non-members.
    pub fn get_private(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key: &str,
    ) -> Option<&VersionedValue> {
        self.private
            .get(&(ns.clone(), collection.clone(), key.to_string()))
    }

    /// Writes plaintext private data at `version` (and its hashes).
    pub fn put_private(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key: &str,
        value: Vec<u8>,
        version: Version,
    ) {
        self.hashed.insert(
            (ns.clone(), collection.clone(), sha256(key.as_bytes())),
            (sha256(&value), version),
        );
        self.private.insert(
            (ns.clone(), collection.clone(), key.to_string()),
            VersionedValue { value, version },
        );
    }

    /// Deletes plaintext private data and its hash entry.
    pub fn delete_private(&mut self, ns: &ChaincodeId, collection: &CollectionName, key: &str) {
        self.private
            .remove(&(ns.clone(), collection.clone(), key.to_string()));
        self.hashed
            .remove(&(ns.clone(), collection.clone(), sha256(key.as_bytes())));
    }

    // ---- hashed private data (all peers) ----

    /// Reads the hashed private entry for a plaintext key: the basis of
    /// `GetPrivateDataHash`, available at **every** peer — including PDC
    /// non-members, which is what makes the paper's endorsement forgery
    /// possible (§IV-A1).
    pub fn get_private_hash(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key: &str,
    ) -> Option<(Hash256, Version)> {
        self.hashed
            .get(&(ns.clone(), collection.clone(), sha256(key.as_bytes())))
            .copied()
    }

    /// Writes a hashed private entry directly (non-member commit path).
    pub fn put_private_hash(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key_hash: Hash256,
        value_hash: Hash256,
        version: Version,
    ) {
        self.hashed.insert(
            (ns.clone(), collection.clone(), key_hash),
            (value_hash, version),
        );
    }

    /// Deletes a hashed private entry by key hash.
    pub fn delete_private_hash(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key_hash: Hash256,
    ) {
        self.hashed
            .remove(&(ns.clone(), collection.clone(), key_hash));
    }

    /// Looks up the version of a hashed entry by key hash.
    pub fn hashed_version(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key_hash: Hash256,
    ) -> Option<Version> {
        self.hashed
            .get(&(ns.clone(), collection.clone(), key_hash))
            .map(|(_, v)| *v)
    }

    // ---- state-based endorsement metadata ----

    /// The committed key-level endorsement policy of a public key, if any.
    pub fn get_validation_parameter(&self, ns: &ChaincodeId, key: &str) -> Option<&str> {
        self.validation_params
            .get(&(ns.clone(), key.to_string()))
            .map(String::as_str)
    }

    /// Sets or clears a key-level endorsement policy.
    pub fn set_validation_parameter(
        &mut self,
        ns: &ChaincodeId,
        key: &str,
        policy: Option<String>,
    ) {
        match policy {
            Some(p) => {
                self.validation_params
                    .insert((ns.clone(), key.to_string()), p);
            }
            None => {
                self.validation_params
                    .remove(&(ns.clone(), key.to_string()));
            }
        }
    }

    /// Applies a transaction's metadata writes.
    pub fn apply_metadata_writes(&mut self, ns: &ChaincodeId, writes: &[MetadataWrite]) {
        for w in writes {
            self.set_validation_parameter(ns, &w.key, w.validation_parameter.clone());
        }
    }

    // ---- commit helpers ----

    /// Applies a public rwset's writes at `version`.
    pub fn apply_public_writes(&mut self, ns: &ChaincodeId, rwset: &KvRwSet, version: Version) {
        for w in &rwset.writes {
            if w.is_delete {
                self.delete_public(ns, &w.key);
            } else {
                self.put_public(ns, &w.key, w.value.clone().unwrap_or_default(), version);
            }
        }
    }

    /// Applies a plaintext private rwset's writes at `version` (member
    /// peers; also maintains the hashed store).
    pub fn apply_private_writes(
        &mut self,
        ns: &ChaincodeId,
        pvt: &CollectionPvtRwSet,
        version: Version,
    ) {
        for w in &pvt.rwset.writes {
            if w.is_delete {
                self.delete_private(ns, &pvt.collection, &w.key);
            } else {
                self.put_private(
                    ns,
                    &pvt.collection,
                    &w.key,
                    w.value.clone().unwrap_or_default(),
                    version,
                );
            }
        }
    }

    /// Applies hashed private writes at `version` (all peers; the only
    /// private state non-members hold).
    pub fn apply_hashed_writes(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        writes: &[fabric_types::HashedWrite],
        version: Version,
    ) {
        for w in writes {
            if w.is_delete {
                self.delete_private_hash(ns, collection, w.key_hash);
            } else {
                self.put_private_hash(
                    ns,
                    collection,
                    w.key_hash,
                    w.value_hash.unwrap_or_default(),
                    version,
                );
            }
        }
    }

    // ---- MVCC ----

    /// Checks a public read set against the current state.
    ///
    /// # Errors
    ///
    /// Returns the first [`MvccViolation`] where a read's recorded version
    /// differs from the current state.
    pub fn check_mvcc_public(
        &self,
        ns: &ChaincodeId,
        reads: &[KvRead],
    ) -> Result<(), MvccViolation> {
        for r in reads {
            let found = self.get_public(ns, &r.key).map(|v| v.version);
            if found != r.version {
                return Err(MvccViolation {
                    namespace: ns.clone(),
                    collection: None,
                    key: r.key.clone(),
                    expected: r.version,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Checks a hashed private read set against the hashed store. This is
    /// the PDC version-conflict check every peer performs — it compares
    /// only *versions*, never re-executing chaincode, which is why forged
    /// values can pass it (§IV-A1).
    pub fn check_mvcc_hashed(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        reads: &[HashedRead],
    ) -> Result<(), MvccViolation> {
        for r in reads {
            let found = self.hashed_version(ns, collection, r.key_hash);
            if found != r.version {
                return Err(MvccViolation {
                    namespace: ns.clone(),
                    collection: Some(collection.clone()),
                    key: r.key_hash.to_hex(),
                    expected: r.version,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Purges plaintext and hashed private data older than `block_to_live`
    /// blocks (the collection's `BlockToLive`); `0` disables purging.
    /// Returns the number of purged plaintext entries.
    pub fn purge_expired_private(
        &mut self,
        collection: &CollectionName,
        block_to_live: u64,
        current_block: u64,
    ) -> usize {
        if block_to_live == 0 {
            return 0;
        }
        let expired = |version: Version| {
            current_block >= version.block_num && current_block - version.block_num > block_to_live
        };
        let dead_private: Vec<PvtKey> = self
            .private
            .iter()
            .filter(|((_, c, _), v)| c == collection && expired(v.version))
            .map(|(k, _)| k.clone())
            .collect();
        let count = dead_private.len();
        for k in dead_private {
            self.private.remove(&k);
        }
        let dead_hashed: Vec<HashKey> = self
            .hashed
            .iter()
            .filter(|((_, c, _), (_, ver))| c == collection && expired(*ver))
            .map(|(k, _)| k.clone())
            .collect();
        for k in dead_hashed {
            self.hashed.remove(&k);
        }
        count
    }

    /// Number of public entries (all namespaces).
    pub fn public_len(&self) -> usize {
        self.public.len()
    }

    /// Number of plaintext private entries (all collections).
    pub fn private_len(&self) -> usize {
        self.private.len()
    }

    /// Number of hashed private entries (all collections).
    pub fn hashed_len(&self) -> usize {
        self.hashed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{HashedWrite, KvWrite};

    fn ns() -> ChaincodeId {
        ChaincodeId::new("cc")
    }

    fn col() -> CollectionName {
        CollectionName::new("PDC1")
    }

    #[test]
    fn public_put_get_delete() {
        let mut ws = WorldState::new();
        assert!(ws.get_public(&ns(), "k1").is_none());
        ws.put_public(&ns(), "k1", b"v1".to_vec(), Version::new(1, 0));
        let v = ws.get_public(&ns(), "k1").unwrap();
        assert_eq!(v.value, b"v1");
        assert_eq!(v.version, Version::new(1, 0));
        ws.delete_public(&ns(), "k1");
        assert!(ws.get_public(&ns(), "k1").is_none());
    }

    #[test]
    fn namespaces_are_isolated() {
        let mut ws = WorldState::new();
        let other = ChaincodeId::new("other");
        ws.put_public(&ns(), "k", b"a".to_vec(), Version::new(1, 0));
        ws.put_public(&other, "k", b"b".to_vec(), Version::new(1, 1));
        assert_eq!(ws.get_public(&ns(), "k").unwrap().value, b"a");
        assert_eq!(ws.get_public(&other, "k").unwrap().value, b"b");
    }

    #[test]
    fn private_put_maintains_hashed_store() {
        let mut ws = WorldState::new();
        ws.put_private(&ns(), &col(), "k1", b"secret".to_vec(), Version::new(2, 3));
        assert_eq!(
            ws.get_private(&ns(), &col(), "k1").unwrap().value,
            b"secret"
        );
        let (vh, ver) = ws.get_private_hash(&ns(), &col(), "k1").unwrap();
        assert_eq!(vh, sha256(b"secret"));
        assert_eq!(ver, Version::new(2, 3));
    }

    #[test]
    fn non_member_sees_hash_but_not_plaintext() {
        // A non-member peer's state only receives hashed writes.
        let mut ws = WorldState::new();
        ws.put_private_hash(
            &ns(),
            &col(),
            sha256(b"k1"),
            sha256(b"secret"),
            Version::new(2, 3),
        );
        assert!(ws.get_private(&ns(), &col(), "k1").is_none());
        // GetPrivateDataHash still yields hash and version — the leak the
        // endorsement forgery exploits.
        let (vh, ver) = ws.get_private_hash(&ns(), &col(), "k1").unwrap();
        assert_eq!(vh, sha256(b"secret"));
        assert_eq!(ver, Version::new(2, 3));
    }

    #[test]
    fn mvcc_public_detects_conflicts() {
        let mut ws = WorldState::new();
        ws.put_public(&ns(), "k1", b"v".to_vec(), Version::new(1, 0));
        let ok = vec![KvRead {
            key: "k1".into(),
            version: Some(Version::new(1, 0)),
        }];
        assert!(ws.check_mvcc_public(&ns(), &ok).is_ok());

        let stale = vec![KvRead {
            key: "k1".into(),
            version: Some(Version::new(0, 0)),
        }];
        let err = ws.check_mvcc_public(&ns(), &stale).unwrap_err();
        assert_eq!(err.key, "k1");
        assert_eq!(err.found, Some(Version::new(1, 0)));

        let phantom = vec![KvRead {
            key: "missing".into(),
            version: Some(Version::new(1, 0)),
        }];
        assert!(ws.check_mvcc_public(&ns(), &phantom).is_err());

        let absent_ok = vec![KvRead {
            key: "missing".into(),
            version: None,
        }];
        assert!(ws.check_mvcc_public(&ns(), &absent_ok).is_ok());
    }

    #[test]
    fn mvcc_hashed_compares_versions_only() {
        let mut ws = WorldState::new();
        ws.put_private_hash(
            &ns(),
            &col(),
            sha256(b"k1"),
            sha256(b"real"),
            Version::new(1, 0),
        );
        // A read claiming the correct version passes even though the reader
        // never saw the plaintext — the crux of the fake-read attack.
        let reads = vec![HashedRead {
            key_hash: sha256(b"k1"),
            version: Some(Version::new(1, 0)),
        }];
        assert!(ws.check_mvcc_hashed(&ns(), &col(), &reads).is_ok());

        let stale = vec![HashedRead {
            key_hash: sha256(b"k1"),
            version: Some(Version::new(0, 0)),
        }];
        assert!(ws.check_mvcc_hashed(&ns(), &col(), &stale).is_err());
    }

    #[test]
    fn apply_public_writes_handles_deletes() {
        let mut ws = WorldState::new();
        ws.put_public(&ns(), "gone", b"x".to_vec(), Version::new(1, 0));
        let rwset = KvRwSet {
            reads: vec![],
            writes: vec![
                KvWrite {
                    key: "k1".into(),
                    value: Some(b"v1".to_vec()),
                    is_delete: false,
                },
                KvWrite {
                    key: "gone".into(),
                    value: None,
                    is_delete: true,
                },
            ],
        };
        ws.apply_public_writes(&ns(), &rwset, Version::new(2, 0));
        assert_eq!(
            ws.get_public(&ns(), "k1").unwrap().version,
            Version::new(2, 0)
        );
        assert!(ws.get_public(&ns(), "gone").is_none());
    }

    #[test]
    fn apply_hashed_writes_handles_deletes() {
        let mut ws = WorldState::new();
        let writes = vec![HashedWrite {
            key_hash: sha256(b"k1"),
            value_hash: Some(sha256(b"v1")),
            is_delete: false,
        }];
        ws.apply_hashed_writes(&ns(), &col(), &writes, Version::new(1, 0));
        assert!(ws.hashed_version(&ns(), &col(), sha256(b"k1")).is_some());

        let deletes = vec![HashedWrite {
            key_hash: sha256(b"k1"),
            value_hash: None,
            is_delete: true,
        }];
        ws.apply_hashed_writes(&ns(), &col(), &deletes, Version::new(2, 0));
        assert!(ws.hashed_version(&ns(), &col(), sha256(b"k1")).is_none());
    }

    #[test]
    fn block_to_live_purges_old_entries() {
        let mut ws = WorldState::new();
        ws.put_private(&ns(), &col(), "old", b"a".to_vec(), Version::new(1, 0));
        ws.put_private(&ns(), &col(), "new", b"b".to_vec(), Version::new(9, 0));
        // BTL = 3, current block 10: entries written before block 7 purge.
        let purged = ws.purge_expired_private(&col(), 3, 10);
        assert_eq!(purged, 1);
        assert!(ws.get_private(&ns(), &col(), "old").is_none());
        assert!(ws.get_private_hash(&ns(), &col(), "old").is_none());
        assert!(ws.get_private(&ns(), &col(), "new").is_some());

        // BTL = 0 keeps everything.
        assert_eq!(ws.purge_expired_private(&col(), 0, 1000), 0);
        assert!(ws.get_private(&ns(), &col(), "new").is_some());
    }

    #[test]
    fn validation_parameters_set_get_clear() {
        let mut ws = WorldState::new();
        assert_eq!(ws.get_validation_parameter(&ns(), "k1"), None);
        ws.apply_metadata_writes(
            &ns(),
            &[MetadataWrite {
                key: "k1".into(),
                validation_parameter: Some("AND('Org1MSP.peer','Org2MSP.peer')".into()),
            }],
        );
        assert_eq!(
            ws.get_validation_parameter(&ns(), "k1"),
            Some("AND('Org1MSP.peer','Org2MSP.peer')")
        );
        ws.apply_metadata_writes(
            &ns(),
            &[MetadataWrite {
                key: "k1".into(),
                validation_parameter: None,
            }],
        );
        assert_eq!(ws.get_validation_parameter(&ns(), "k1"), None);
    }

    #[test]
    fn public_range_iterates_one_namespace() {
        let mut ws = WorldState::new();
        ws.put_public(&ns(), "a", b"1".to_vec(), Version::new(1, 0));
        ws.put_public(&ns(), "b", b"2".to_vec(), Version::new(1, 1));
        ws.put_public(
            &ChaincodeId::new("zz"),
            "c",
            b"3".to_vec(),
            Version::new(1, 2),
        );
        let cc = ns();
        let keys: Vec<&str> = ws.public_range(&cc).map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
