//! The versioned world state, including private-data side databases.

use fabric_crypto::{sha256, Hash256};
use fabric_types::{
    ChaincodeId, CollectionHashedRwSet, CollectionName, CollectionPvtRwSet, HashedRead, KvRead,
    KvRwSet, MetadataWrite, Version,
};
use std::collections::BTreeMap;
use std::fmt;

/// A committed value with the `(block, tx)` version that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The stored value.
    pub value: Vec<u8>,
    /// Height of the committing transaction.
    pub version: Version,
}

/// Per-namespace public entries, keyed by state key.
type PubNs = BTreeMap<String, VersionedValue>;
/// Per-namespace plaintext private entries: `collection -> key -> value`.
type PvtNs = BTreeMap<CollectionName, BTreeMap<String, VersionedValue>>;
/// Per-namespace hashed private entries: `collection -> hash(key) ->
/// (hash(value), version)`.
type HashNs = BTreeMap<CollectionName, BTreeMap<Hash256, (Hash256, Version)>>;

/// The inner map for `outer_key`, inserting an empty one on first use.
/// Looks up before cloning so the steady-state path allocates nothing
/// (`BTreeMap::entry` would clone the key on every call).
fn nested<'a, K: Ord + Clone, V: Default>(map: &'a mut BTreeMap<K, V>, outer_key: &K) -> &'a mut V {
    if !map.contains_key(outer_key) {
        map.insert(outer_key.clone(), V::default());
    }
    map.get_mut(outer_key).expect("just inserted")
}

/// The reason an MVCC check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvccViolation {
    /// Namespace of the conflicting read.
    pub namespace: ChaincodeId,
    /// Collection of the conflicting read, `None` for public data.
    pub collection: Option<CollectionName>,
    /// The conflicting key (hex of the key hash for private reads).
    pub key: String,
    /// Version recorded in the read set.
    pub expected: Option<Version>,
    /// Version currently in the world state.
    pub found: Option<Version>,
}

impl fmt::Display for MvccViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mvcc conflict on {}/{}{}: read {:?}, state has {:?}",
            self.namespace,
            self.collection
                .as_ref()
                .map(|c| format!("{c}/"))
                .unwrap_or_default(),
            self.key,
            self.expected,
            self.found
        )
    }
}

/// The world state database of one peer for one channel.
///
/// Holds three maps, mirroring Fabric's state layout at a peer:
/// public data, plaintext private data (only populated for collections the
/// peer is a member of), and hashed private data (populated at every peer).
///
/// Each map nests by namespace (and collection) rather than using flat
/// composite-string keys, so the commit hot path looks entries up without
/// allocating `(namespace, key)` tuples per access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorldState {
    public: BTreeMap<ChaincodeId, PubNs>,
    private: BTreeMap<ChaincodeId, PvtNs>,
    hashed: BTreeMap<ChaincodeId, HashNs>,
    /// Key-level endorsement policies (state-based endorsement metadata).
    validation_params: BTreeMap<ChaincodeId, BTreeMap<String, String>>,
}

impl WorldState {
    /// An empty world state.
    pub fn new() -> Self {
        WorldState::default()
    }

    // ---- public data ----

    /// Reads a public key: `(value, version)` or `None` when absent.
    pub fn get_public(&self, ns: &ChaincodeId, key: &str) -> Option<&VersionedValue> {
        self.public.get(ns)?.get(key)
    }

    /// Applies a public write at `version`.
    pub fn put_public(&mut self, ns: &ChaincodeId, key: &str, value: Vec<u8>, version: Version) {
        nested(&mut self.public, ns).insert(key.to_string(), VersionedValue { value, version });
    }

    /// Deletes a public key.
    pub fn delete_public(&mut self, ns: &ChaincodeId, key: &str) {
        if let Some(entries) = self.public.get_mut(ns) {
            entries.remove(key);
        }
    }

    /// Iterates public entries of a namespace in key order.
    pub fn public_range<'a>(
        &'a self,
        ns: &'a ChaincodeId,
    ) -> impl Iterator<Item = (&'a str, &'a VersionedValue)> + 'a {
        self.public
            .get(ns)
            .into_iter()
            .flat_map(|entries| entries.iter())
            .map(|(k, v)| (k.as_str(), v))
    }

    // ---- plaintext private data (collection members only) ----

    /// Reads plaintext private data. Returns `None` when this peer does not
    /// store the collection (non-member) or the key is absent — the caller
    /// distinguishes the two through collection membership, exactly like
    /// Fabric's `GetPrivateData` which errors at non-members.
    pub fn get_private(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key: &str,
    ) -> Option<&VersionedValue> {
        self.private.get(ns)?.get(collection)?.get(key)
    }

    /// Writes plaintext private data at `version` (and its hashes).
    pub fn put_private(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key: &str,
        value: Vec<u8>,
        version: Version,
    ) {
        nested(nested(&mut self.hashed, ns), collection)
            .insert(sha256(key.as_bytes()), (sha256(&value), version));
        nested(nested(&mut self.private, ns), collection)
            .insert(key.to_string(), VersionedValue { value, version });
    }

    /// Deletes plaintext private data and its hash entry.
    pub fn delete_private(&mut self, ns: &ChaincodeId, collection: &CollectionName, key: &str) {
        if let Some(entries) = self.private.get_mut(ns).and_then(|c| c.get_mut(collection)) {
            entries.remove(key);
        }
        if let Some(entries) = self.hashed.get_mut(ns).and_then(|c| c.get_mut(collection)) {
            entries.remove(&sha256(key.as_bytes()));
        }
    }

    // ---- hashed private data (all peers) ----

    /// Reads the hashed private entry for a plaintext key: the basis of
    /// `GetPrivateDataHash`, available at **every** peer — including PDC
    /// non-members, which is what makes the paper's endorsement forgery
    /// possible (§IV-A1).
    pub fn get_private_hash(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key: &str,
    ) -> Option<(Hash256, Version)> {
        self.hashed
            .get(ns)?
            .get(collection)?
            .get(&sha256(key.as_bytes()))
            .copied()
    }

    /// Writes a hashed private entry directly (non-member commit path).
    pub fn put_private_hash(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key_hash: Hash256,
        value_hash: Hash256,
        version: Version,
    ) {
        nested(nested(&mut self.hashed, ns), collection).insert(key_hash, (value_hash, version));
    }

    /// Deletes a hashed private entry by key hash.
    pub fn delete_private_hash(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key_hash: Hash256,
    ) {
        if let Some(entries) = self.hashed.get_mut(ns).and_then(|c| c.get_mut(collection)) {
            entries.remove(&key_hash);
        }
    }

    /// Looks up the version of a hashed entry by key hash.
    pub fn hashed_version(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        key_hash: Hash256,
    ) -> Option<Version> {
        self.hashed
            .get(ns)?
            .get(collection)?
            .get(&key_hash)
            .map(|(_, v)| *v)
    }

    // ---- state-based endorsement metadata ----

    /// The committed key-level endorsement policy of a public key, if any.
    pub fn get_validation_parameter(&self, ns: &ChaincodeId, key: &str) -> Option<&str> {
        self.validation_params.get(ns)?.get(key).map(String::as_str)
    }

    /// Sets or clears a key-level endorsement policy.
    pub fn set_validation_parameter(
        &mut self,
        ns: &ChaincodeId,
        key: &str,
        policy: Option<String>,
    ) {
        match policy {
            Some(p) => {
                nested(&mut self.validation_params, ns).insert(key.to_string(), p);
            }
            None => {
                if let Some(entries) = self.validation_params.get_mut(ns) {
                    entries.remove(key);
                }
            }
        }
    }

    /// Applies a transaction's metadata writes.
    pub fn apply_metadata_writes(&mut self, ns: &ChaincodeId, writes: &[MetadataWrite]) {
        for w in writes {
            self.set_validation_parameter(ns, &w.key, w.validation_parameter.clone());
        }
    }

    // ---- commit helpers ----

    /// Applies a public rwset's writes at `version`.
    pub fn apply_public_writes(&mut self, ns: &ChaincodeId, rwset: &KvRwSet, version: Version) {
        for w in &rwset.writes {
            if w.is_delete {
                self.delete_public(ns, &w.key);
            } else {
                self.put_public(ns, &w.key, w.value.clone().unwrap_or_default(), version);
            }
        }
    }

    /// Applies a plaintext private rwset's writes at `version` (member
    /// peers; also maintains the hashed store).
    pub fn apply_private_writes(
        &mut self,
        ns: &ChaincodeId,
        pvt: &CollectionPvtRwSet,
        version: Version,
    ) {
        for w in &pvt.rwset.writes {
            if w.is_delete {
                self.delete_private(ns, &pvt.collection, &w.key);
            } else {
                self.put_private(
                    ns,
                    &pvt.collection,
                    &w.key,
                    w.value.clone().unwrap_or_default(),
                    version,
                );
            }
        }
    }

    /// Verifies that `pvt` hashes exactly to `expected` and, when it does,
    /// applies its plaintext writes (plus the matching hashed entries) at
    /// `version`. Returns whether the plaintext matched; nothing is
    /// written on a mismatch.
    ///
    /// Equivalent to checking `pvt.to_hashed() == *expected` and then
    /// calling [`WorldState::apply_private_writes`], but each key and
    /// value is hashed once — the digests computed for verification are
    /// the ones stored — instead of once for the comparison and again for
    /// the hashed-store insert. This is the member-peer commit hot path.
    pub fn apply_private_writes_verified(
        &mut self,
        ns: &ChaincodeId,
        pvt: &CollectionPvtRwSet,
        expected: &CollectionHashedRwSet,
        version: Version,
    ) -> bool {
        if pvt.collection != expected.collection
            || pvt.rwset.reads.len() != expected.reads.len()
            || pvt.rwset.writes.len() != expected.writes.len()
        {
            return false;
        }
        let reads_match = pvt
            .rwset
            .reads
            .iter()
            .zip(&expected.reads)
            .all(|(r, h)| h.version == r.version && h.key_hash == sha256(r.key.as_bytes()));
        if !reads_match {
            return false;
        }
        let writes_match = pvt.rwset.writes.iter().zip(&expected.writes).all(|(w, h)| {
            h.is_delete == w.is_delete
                && h.key_hash == sha256(w.key.as_bytes())
                && h.value_hash == w.value.as_deref().map(sha256)
        });
        if !writes_match {
            return false;
        }
        // Resolve each store's collection map once; the per-write loop
        // then runs against the innermost maps directly.
        let hashed_col = nested(nested(&mut self.hashed, ns), &pvt.collection);
        for (w, h) in pvt.rwset.writes.iter().zip(&expected.writes) {
            if w.is_delete {
                hashed_col.remove(&h.key_hash);
            } else {
                let value_hash = match h.value_hash {
                    Some(vh) => vh,
                    // A `None` value hashes as empty in the hashed store,
                    // as in `put_private`.
                    None => sha256(w.value.as_deref().unwrap_or_default()),
                };
                hashed_col.insert(h.key_hash, (value_hash, version));
            }
        }
        let private_col = nested(nested(&mut self.private, ns), &pvt.collection);
        for w in &pvt.rwset.writes {
            if w.is_delete {
                private_col.remove(&w.key);
            } else {
                let value = w.value.clone().unwrap_or_default();
                private_col.insert(w.key.clone(), VersionedValue { value, version });
            }
        }
        true
    }

    /// Applies hashed private writes at `version` (all peers; the only
    /// private state non-members hold).
    pub fn apply_hashed_writes(
        &mut self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        writes: &[fabric_types::HashedWrite],
        version: Version,
    ) {
        if writes.is_empty() {
            return;
        }
        let entries = nested(nested(&mut self.hashed, ns), collection);
        for w in writes {
            if w.is_delete {
                entries.remove(&w.key_hash);
            } else {
                entries.insert(w.key_hash, (w.value_hash.unwrap_or_default(), version));
            }
        }
    }

    // ---- MVCC ----

    /// Checks a public read set against the current state.
    ///
    /// # Errors
    ///
    /// Returns the first [`MvccViolation`] where a read's recorded version
    /// differs from the current state.
    pub fn check_mvcc_public(
        &self,
        ns: &ChaincodeId,
        reads: &[KvRead],
    ) -> Result<(), MvccViolation> {
        for r in reads {
            let found = self.get_public(ns, &r.key).map(|v| v.version);
            if found != r.version {
                return Err(MvccViolation {
                    namespace: ns.clone(),
                    collection: None,
                    key: r.key.clone(),
                    expected: r.version,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Checks a hashed private read set against the hashed store. This is
    /// the PDC version-conflict check every peer performs — it compares
    /// only *versions*, never re-executing chaincode, which is why forged
    /// values can pass it (§IV-A1).
    pub fn check_mvcc_hashed(
        &self,
        ns: &ChaincodeId,
        collection: &CollectionName,
        reads: &[HashedRead],
    ) -> Result<(), MvccViolation> {
        for r in reads {
            let found = self.hashed_version(ns, collection, r.key_hash);
            if found != r.version {
                return Err(MvccViolation {
                    namespace: ns.clone(),
                    collection: Some(collection.clone()),
                    key: r.key_hash.to_hex(),
                    expected: r.version,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Purges plaintext and hashed private data older than `block_to_live`
    /// blocks (the collection's `BlockToLive`); `0` disables purging.
    /// Returns the number of purged plaintext entries.
    pub fn purge_expired_private(
        &mut self,
        collection: &CollectionName,
        block_to_live: u64,
        current_block: u64,
    ) -> usize {
        if block_to_live == 0 {
            return 0;
        }
        let expired = |version: Version| {
            current_block >= version.block_num && current_block - version.block_num > block_to_live
        };
        let mut count = 0;
        for cols in self.private.values_mut() {
            if let Some(entries) = cols.get_mut(collection) {
                let before = entries.len();
                entries.retain(|_, v| !expired(v.version));
                count += before - entries.len();
            }
        }
        for cols in self.hashed.values_mut() {
            if let Some(entries) = cols.get_mut(collection) {
                entries.retain(|_, (_, ver)| !expired(*ver));
            }
        }
        count
    }

    /// Number of public entries (all namespaces).
    pub fn public_len(&self) -> usize {
        self.public.values().map(BTreeMap::len).sum()
    }

    /// Number of plaintext private entries (all collections).
    pub fn private_len(&self) -> usize {
        self.private
            .values()
            .flat_map(BTreeMap::values)
            .map(BTreeMap::len)
            .sum()
    }

    /// Number of hashed private entries (all collections).
    pub fn hashed_len(&self) -> usize {
        self.hashed
            .values()
            .flat_map(BTreeMap::values)
            .map(BTreeMap::len)
            .sum()
    }

    /// A deterministic digest over the entire state — public, private,
    /// hashed, and validation parameters — so equivalence tests can assert
    /// two peers converged without comparing maps entry by entry.
    pub fn digest(&self) -> Hash256 {
        fn feed(h: &mut fabric_crypto::Sha256, bytes: &[u8]) {
            h.update(&(bytes.len() as u64).to_be_bytes());
            h.update(bytes);
        }
        fn feed_version(h: &mut fabric_crypto::Sha256, v: Version) {
            h.update(&v.block_num.to_be_bytes());
            h.update(&v.tx_num.to_be_bytes());
        }
        // Nested iteration visits entries in the same lexicographic
        // `(namespace, [collection,] key)` order the previous flat
        // composite-key layout did, so digests are stable across the
        // storage refactor.
        let mut h = fabric_crypto::Sha256::new();
        h.update(b"public");
        h.update(&(self.public_len() as u64).to_be_bytes());
        for (ns, entries) in &self.public {
            for (key, vv) in entries {
                feed(&mut h, ns.as_str().as_bytes());
                feed(&mut h, key.as_bytes());
                feed(&mut h, &vv.value);
                feed_version(&mut h, vv.version);
            }
        }
        h.update(b"private");
        h.update(&(self.private_len() as u64).to_be_bytes());
        for (ns, cols) in &self.private {
            for (col, entries) in cols {
                for (key, vv) in entries {
                    feed(&mut h, ns.as_str().as_bytes());
                    feed(&mut h, col.as_str().as_bytes());
                    feed(&mut h, key.as_bytes());
                    feed(&mut h, &vv.value);
                    feed_version(&mut h, vv.version);
                }
            }
        }
        h.update(b"hashed");
        h.update(&(self.hashed_len() as u64).to_be_bytes());
        for (ns, cols) in &self.hashed {
            for (col, entries) in cols {
                for (key_hash, (value_hash, version)) in entries {
                    feed(&mut h, ns.as_str().as_bytes());
                    feed(&mut h, col.as_str().as_bytes());
                    h.update(key_hash.as_bytes());
                    h.update(value_hash.as_bytes());
                    feed_version(&mut h, *version);
                }
            }
        }
        h.update(b"validation_params");
        let params_len: usize = self.validation_params.values().map(BTreeMap::len).sum();
        h.update(&(params_len as u64).to_be_bytes());
        for (ns, entries) in &self.validation_params {
            for (key, expr) in entries {
                feed(&mut h, ns.as_str().as_bytes());
                feed(&mut h, key.as_bytes());
                feed(&mut h, expr.as_bytes());
            }
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{HashedWrite, KvWrite};

    fn ns() -> ChaincodeId {
        ChaincodeId::new("cc")
    }

    fn col() -> CollectionName {
        CollectionName::new("PDC1")
    }

    #[test]
    fn digest_tracks_every_store() {
        let mut ws = WorldState::new();
        let empty = ws.digest();
        ws.put_public(&ns(), "k1", b"v1".to_vec(), Version::new(1, 0));
        let with_public = ws.digest();
        assert_ne!(empty, with_public);
        ws.set_validation_parameter(&ns(), "k1", Some("OR('Org1MSP.peer')".into()));
        let with_param = ws.digest();
        assert_ne!(with_public, with_param);
        // Equal states digest equally.
        assert_eq!(ws.digest(), ws.clone().digest());
        ws.set_validation_parameter(&ns(), "k1", None);
        assert_eq!(ws.digest(), with_public);
    }

    #[test]
    fn public_put_get_delete() {
        let mut ws = WorldState::new();
        assert!(ws.get_public(&ns(), "k1").is_none());
        ws.put_public(&ns(), "k1", b"v1".to_vec(), Version::new(1, 0));
        let v = ws.get_public(&ns(), "k1").unwrap();
        assert_eq!(v.value, b"v1");
        assert_eq!(v.version, Version::new(1, 0));
        ws.delete_public(&ns(), "k1");
        assert!(ws.get_public(&ns(), "k1").is_none());
    }

    #[test]
    fn namespaces_are_isolated() {
        let mut ws = WorldState::new();
        let other = ChaincodeId::new("other");
        ws.put_public(&ns(), "k", b"a".to_vec(), Version::new(1, 0));
        ws.put_public(&other, "k", b"b".to_vec(), Version::new(1, 1));
        assert_eq!(ws.get_public(&ns(), "k").unwrap().value, b"a");
        assert_eq!(ws.get_public(&other, "k").unwrap().value, b"b");
    }

    #[test]
    fn private_put_maintains_hashed_store() {
        let mut ws = WorldState::new();
        ws.put_private(&ns(), &col(), "k1", b"secret".to_vec(), Version::new(2, 3));
        assert_eq!(
            ws.get_private(&ns(), &col(), "k1").unwrap().value,
            b"secret"
        );
        let (vh, ver) = ws.get_private_hash(&ns(), &col(), "k1").unwrap();
        assert_eq!(vh, sha256(b"secret"));
        assert_eq!(ver, Version::new(2, 3));
    }

    #[test]
    fn non_member_sees_hash_but_not_plaintext() {
        // A non-member peer's state only receives hashed writes.
        let mut ws = WorldState::new();
        ws.put_private_hash(
            &ns(),
            &col(),
            sha256(b"k1"),
            sha256(b"secret"),
            Version::new(2, 3),
        );
        assert!(ws.get_private(&ns(), &col(), "k1").is_none());
        // GetPrivateDataHash still yields hash and version — the leak the
        // endorsement forgery exploits.
        let (vh, ver) = ws.get_private_hash(&ns(), &col(), "k1").unwrap();
        assert_eq!(vh, sha256(b"secret"));
        assert_eq!(ver, Version::new(2, 3));
    }

    #[test]
    fn mvcc_public_detects_conflicts() {
        let mut ws = WorldState::new();
        ws.put_public(&ns(), "k1", b"v".to_vec(), Version::new(1, 0));
        let ok = vec![KvRead {
            key: "k1".into(),
            version: Some(Version::new(1, 0)),
        }];
        assert!(ws.check_mvcc_public(&ns(), &ok).is_ok());

        let stale = vec![KvRead {
            key: "k1".into(),
            version: Some(Version::new(0, 0)),
        }];
        let err = ws.check_mvcc_public(&ns(), &stale).unwrap_err();
        assert_eq!(err.key, "k1");
        assert_eq!(err.found, Some(Version::new(1, 0)));

        let phantom = vec![KvRead {
            key: "missing".into(),
            version: Some(Version::new(1, 0)),
        }];
        assert!(ws.check_mvcc_public(&ns(), &phantom).is_err());

        let absent_ok = vec![KvRead {
            key: "missing".into(),
            version: None,
        }];
        assert!(ws.check_mvcc_public(&ns(), &absent_ok).is_ok());
    }

    #[test]
    fn mvcc_hashed_compares_versions_only() {
        let mut ws = WorldState::new();
        ws.put_private_hash(
            &ns(),
            &col(),
            sha256(b"k1"),
            sha256(b"real"),
            Version::new(1, 0),
        );
        // A read claiming the correct version passes even though the reader
        // never saw the plaintext — the crux of the fake-read attack.
        let reads = vec![HashedRead {
            key_hash: sha256(b"k1"),
            version: Some(Version::new(1, 0)),
        }];
        assert!(ws.check_mvcc_hashed(&ns(), &col(), &reads).is_ok());

        let stale = vec![HashedRead {
            key_hash: sha256(b"k1"),
            version: Some(Version::new(0, 0)),
        }];
        assert!(ws.check_mvcc_hashed(&ns(), &col(), &stale).is_err());
    }

    #[test]
    fn apply_public_writes_handles_deletes() {
        let mut ws = WorldState::new();
        ws.put_public(&ns(), "gone", b"x".to_vec(), Version::new(1, 0));
        let rwset = KvRwSet {
            reads: vec![],
            writes: vec![
                KvWrite {
                    key: "k1".into(),
                    value: Some(b"v1".to_vec()),
                    is_delete: false,
                },
                KvWrite {
                    key: "gone".into(),
                    value: None,
                    is_delete: true,
                },
            ],
        };
        ws.apply_public_writes(&ns(), &rwset, Version::new(2, 0));
        assert_eq!(
            ws.get_public(&ns(), "k1").unwrap().version,
            Version::new(2, 0)
        );
        assert!(ws.get_public(&ns(), "gone").is_none());
    }

    #[test]
    fn apply_hashed_writes_handles_deletes() {
        let mut ws = WorldState::new();
        let writes = vec![HashedWrite {
            key_hash: sha256(b"k1"),
            value_hash: Some(sha256(b"v1")),
            is_delete: false,
        }];
        ws.apply_hashed_writes(&ns(), &col(), &writes, Version::new(1, 0));
        assert!(ws.hashed_version(&ns(), &col(), sha256(b"k1")).is_some());

        let deletes = vec![HashedWrite {
            key_hash: sha256(b"k1"),
            value_hash: None,
            is_delete: true,
        }];
        ws.apply_hashed_writes(&ns(), &col(), &deletes, Version::new(2, 0));
        assert!(ws.hashed_version(&ns(), &col(), sha256(b"k1")).is_none());
    }

    #[test]
    fn block_to_live_purges_old_entries() {
        let mut ws = WorldState::new();
        ws.put_private(&ns(), &col(), "old", b"a".to_vec(), Version::new(1, 0));
        ws.put_private(&ns(), &col(), "new", b"b".to_vec(), Version::new(9, 0));
        // BTL = 3, current block 10: entries written before block 7 purge.
        let purged = ws.purge_expired_private(&col(), 3, 10);
        assert_eq!(purged, 1);
        assert!(ws.get_private(&ns(), &col(), "old").is_none());
        assert!(ws.get_private_hash(&ns(), &col(), "old").is_none());
        assert!(ws.get_private(&ns(), &col(), "new").is_some());

        // BTL = 0 keeps everything.
        assert_eq!(ws.purge_expired_private(&col(), 0, 1000), 0);
        assert!(ws.get_private(&ns(), &col(), "new").is_some());
    }

    #[test]
    fn validation_parameters_set_get_clear() {
        let mut ws = WorldState::new();
        assert_eq!(ws.get_validation_parameter(&ns(), "k1"), None);
        ws.apply_metadata_writes(
            &ns(),
            &[MetadataWrite {
                key: "k1".into(),
                validation_parameter: Some("AND('Org1MSP.peer','Org2MSP.peer')".into()),
            }],
        );
        assert_eq!(
            ws.get_validation_parameter(&ns(), "k1"),
            Some("AND('Org1MSP.peer','Org2MSP.peer')")
        );
        ws.apply_metadata_writes(
            &ns(),
            &[MetadataWrite {
                key: "k1".into(),
                validation_parameter: None,
            }],
        );
        assert_eq!(ws.get_validation_parameter(&ns(), "k1"), None);
    }

    #[test]
    fn public_range_iterates_one_namespace() {
        let mut ws = WorldState::new();
        ws.put_public(&ns(), "a", b"1".to_vec(), Version::new(1, 0));
        ws.put_public(&ns(), "b", b"2".to_vec(), Version::new(1, 1));
        ws.put_public(
            &ChaincodeId::new("zz"),
            "c",
            b"3".to_vec(),
            Version::new(1, 2),
        );
        let cc = ns();
        let keys: Vec<&str> = ws.public_range(&cc).map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
