//! Ledger substrate: versioned world state, private data stores, block
//! store and MVCC validation primitives.
//!
//! A Fabric ledger has two halves (paper §II-A1):
//!
//! * the **world state** — current `⟨key, value, version⟩` records, with
//!   private data kept in per-collection side databases: plaintext only at
//!   collection members, `⟨hash(key), hash(value), version⟩` at *every*
//!   peer of the channel (§III-A1);
//! * the **blockchain** — the hash-chained block store of all transactions.
//!
//! The version-conflict (MVCC) check of the validation phase is provided
//! here as [`WorldState::check_mvcc_public`] and
//! [`WorldState::check_mvcc_hashed`].

mod block_store;
mod history;
mod world_state;

pub use block_store::{BlockStore, BlockStoreError};
pub use history::{HistoryDb, HistoryEntry};
pub use world_state::{MvccViolation, VersionedValue, WorldState};
