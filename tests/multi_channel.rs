//! The paper's Fig. 1 topology: four organizations, two channels, and a
//! PDC inside one channel. Verifies the three isolation layers the paper
//! describes: channel-level ledger isolation, PDC plaintext isolation
//! within a channel, and identity continuity across channels.

use fabric_pdc::network::Consortium;
use fabric_pdc::prelude::*;
use std::sync::Arc;

/// Builds the Fig. 1 system: channel C1 = {org1, org2, org4} hosting
/// chaincode S1 with PDC {org1, org4}; channel C2 = {org2, org3} hosting
/// chaincode S2.
fn fig1_consortium() -> Consortium {
    let mut consortium = Consortium::new(20210701);
    {
        let c1 = consortium.create_channel("C1", &["Org1MSP", "Org2MSP", "Org4MSP"]);
        let s1 = ChaincodeDefinition::new("S1").with_collection(
            CollectionConfig::membership_of(
                "PDC14",
                &[OrgId::new("Org1MSP"), OrgId::new("Org4MSP")],
            )
            .with_member_only_read(false),
        );
        c1.deploy_chaincode(s1, Arc::new(GuardedPdc::unconstrained("PDC14")));
        c1.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    }
    {
        let c2 = consortium.create_channel("C2", &["Org2MSP", "Org3MSP"]);
        c2.deploy_chaincode(ChaincodeDefinition::new("S2"), Arc::new(AssetTransfer));
    }
    consortium
}

#[test]
fn channels_maintain_separate_ledgers() {
    let mut consortium = fig1_consortium();

    // Transact on C1.
    let outcome = consortium
        .channel_mut("C1")
        .submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &["a1", "red", "alice", "100"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());

    // Transact on C2 (MAJORITY of 2 orgs needs both).
    let outcome = consortium
        .channel_mut("C2")
        .submit_transaction(
            "client0.org2",
            "S2",
            "CreateAsset",
            &["b1", "blue", "bob", "50"],
            &[],
            &["peer0.org2", "peer0.org3"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());

    // Ledger isolation: C1's chain knows nothing of C2's and vice versa.
    let c1_height = consortium
        .channel("C1")
        .peer("peer0.org2")
        .block_store()
        .height();
    let c2_height = consortium
        .channel("C2")
        .peer("peer0.org2")
        .block_store()
        .height();
    assert_eq!(c1_height, 1);
    assert_eq!(c2_height, 1);
    assert!(consortium
        .channel("C1")
        .peer("peer0.org2")
        .world_state()
        .get_public(&ChaincodeId::new("S2"), "b1")
        .is_none());
    assert!(consortium
        .channel("C2")
        .peer("peer0.org2")
        .world_state()
        .get_public(&ChaincodeId::new("assets"), "a1")
        .is_none());
    // The chains differ cryptographically.
    assert_ne!(
        consortium
            .channel("C1")
            .peer("peer0.org2")
            .block_store()
            .tip_hash(),
        consortium
            .channel("C2")
            .peer("peer0.org2")
            .block_store()
            .tip_hash()
    );
}

#[test]
fn org2_uses_one_identity_in_both_channels() {
    let consortium = fig1_consortium();
    let on_c1 = consortium
        .channel("C1")
        .peer("peer0.org2")
        .identity()
        .clone();
    let on_c2 = consortium
        .channel("C2")
        .peer("peer0.org2")
        .identity()
        .clone();
    assert_eq!(on_c1.public_key, on_c2.public_key);
    assert_eq!(on_c1.org, on_c2.org);
}

#[test]
fn pdc_isolates_within_channel_c1() {
    let mut consortium = fig1_consortium();
    // org1 writes private data shared with org4 only.
    let outcome = consortium
        .channel_mut("C1")
        .submit_transaction(
            "client0.org1",
            "S1",
            "write",
            &["secret-k", "77"],
            &[],
            &["peer0.org1", "peer0.org4"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());

    let ns = ChaincodeId::new("S1");
    let col = CollectionName::new("PDC14");
    let c1 = consortium.channel("C1");
    // Members (P1, P4) hold plaintext.
    assert!(c1
        .peer("peer0.org1")
        .world_state()
        .get_private(&ns, &col, "secret-k")
        .is_some());
    assert!(c1
        .peer("peer0.org4")
        .world_state()
        .get_private(&ns, &col, "secret-k")
        .is_some());
    // P2 is in the channel but not the PDC: hash only (the paper's Fig. 1).
    assert!(c1
        .peer("peer0.org2")
        .world_state()
        .get_private(&ns, &col, "secret-k")
        .is_none());
    assert!(c1
        .peer("peer0.org2")
        .world_state()
        .get_private_hash(&ns, &col, "secret-k")
        .is_some());
    // org3 is not even in the channel; its C2 peer has no trace at all.
    assert!(consortium
        .channel("C2")
        .peer("peer0.org3")
        .world_state()
        .get_private_hash(&ns, &col, "secret-k")
        .is_none());
}

#[test]
fn non_channel_member_cannot_be_endorser() {
    let mut consortium = fig1_consortium();
    // org3 has no peer on C1 at all — the network cannot even route to it.
    let err = consortium
        .channel_mut("C1")
        .submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &["x", "red", "alice", "1"],
            &[],
            &["peer0.org3"],
        )
        .unwrap_err();
    assert!(matches!(
        err,
        fabric_pdc::network::NetworkError::UnknownPeer(_)
    ));
}
