//! Service discovery end to end: the network computes a minimal
//! endorsement plan from the chaincode policy, and transactions endorsed
//! by exactly that plan validate.

use fabric_pdc::prelude::*;
use std::sync::Arc;

#[test]
fn discovered_plan_satisfies_majority() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP", "Org4MSP", "Org5MSP"])
        .seed(970)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));

    let plan = net.discover_endorsers("assets").expect("plan exists");
    // MAJORITY of 5 orgs = 3 endorsers.
    assert_eq!(plan.len(), 3);

    let endorsers: Vec<&str> = plan.iter().map(String::as_str).collect();
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &["a1", "red", "alice", "100"],
            &[],
            &endorsers,
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
}

#[test]
fn discovery_honours_explicit_policies() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(971)
        .build();
    net.deploy_chaincode(
        ChaincodeDefinition::new("pinned")
            .with_endorsement_policy("AND('Org2MSP.peer','Org3MSP.peer')"),
        Arc::new(AssetTransfer),
    );
    let plan = net.discover_endorsers("pinned").unwrap();
    assert_eq!(plan, vec!["peer0.org2", "peer0.org3"]);

    // One-endorser policies yield one-peer plans.
    net.deploy_chaincode(
        ChaincodeDefinition::new("single").with_endorsement_policy("OR('Org1MSP.peer')"),
        Arc::new(AssetTransfer),
    );
    assert_eq!(
        net.discover_endorsers("single").unwrap(),
        vec!["peer0.org1"]
    );
}

#[test]
fn discovery_fails_for_unsatisfiable_or_unknown() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP"])
        .seed(972)
        .build();
    net.deploy_chaincode(
        ChaincodeDefinition::new("impossible")
            .with_endorsement_policy("AND('Org1MSP.peer','Org9MSP.peer')"),
        Arc::new(AssetTransfer),
    );
    assert!(net.discover_endorsers("impossible").is_none());
    assert!(net.discover_endorsers("ghost").is_none());
}

#[test]
fn attackers_view_of_discovery_excludes_victims() {
    // The planner run over only the attacker-controlled peers answers the
    // paper's §IV-A5 question: can non-members alone satisfy the policy?
    use fabric_pdc::policy::{minimal_endorsement_set, SignaturePolicy};
    let non_members: Vec<Identity> = [("Org3MSP", 1u64), ("Org4MSP", 2)]
        .iter()
        .map(|(org, seed)| {
            Identity::new(
                *org,
                Role::Peer,
                Keypair::generate_from_seed(980 + seed).public_key(),
            )
        })
        .collect();
    let noutof = SignaturePolicy::parse(
        "OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer','Org5MSP.peer')",
    )
    .unwrap();
    let plan = minimal_endorsement_set(&noutof, &non_members).expect("attack is feasible");
    assert_eq!(plan.len(), 2);

    // AND(org1, org2) is NOT satisfiable by the attackers — which is why
    // the collection-level policy mitigation works for writes.
    let and = SignaturePolicy::parse("AND('Org1MSP.peer','Org2MSP.peer')").unwrap();
    assert!(minimal_endorsement_set(&and, &non_members).is_none());
}
