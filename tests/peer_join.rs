//! Late peer join: a new peer bootstraps by replaying the chain and
//! reconciling private data for its org's collections.

use fabric_pdc::prelude::*;
use std::sync::Arc;

fn seeded_network(seed: u64) -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    let def = ChaincodeDefinition::new("guarded").with_collection(
        CollectionConfig::membership_of("PDC1", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_member_only_read(false),
    );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained("PDC1")));
    for i in 0..3 {
        let key = format!("a{i}");
        net.submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &[&key, "red", "alice", "1"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    }
    net.submit_transaction(
        "client0.org1",
        "guarded",
        "write",
        &["secret", "42"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    net
}

#[test]
fn member_org_peer_joins_with_full_state() {
    let mut net = seeded_network(1100);
    let name = net.add_peer("Org2MSP");
    assert_eq!(name, "peer1.org2");

    let veteran = net.peer("peer0.org2");
    let rookie = net.peer("peer1.org2");
    // Identical chains.
    assert_eq!(
        rookie.block_store().height(),
        veteran.block_store().height()
    );
    assert_eq!(
        rookie.block_store().tip_hash(),
        veteran.block_store().tip_hash()
    );
    assert!(rookie.block_store().verify_chain());
    // Identical public state.
    assert_eq!(
        rookie.world_state().public_len(),
        veteran.world_state().public_len()
    );
    // The private data was reconciled (org2 is a member).
    assert_eq!(
        rookie
            .world_state()
            .get_private(
                &ChaincodeId::new("guarded"),
                &CollectionName::new("PDC1"),
                "secret"
            )
            .unwrap()
            .value,
        b"42"
    );
    // History replayed too.
    assert_eq!(
        rookie
            .history()
            .key_history(&ChaincodeId::new("assets"), "a0")
            .len(),
        1
    );
}

#[test]
fn non_member_org_peer_joins_with_hashes_only() {
    let mut net = seeded_network(1101);
    let name = net.add_peer("Org3MSP");
    let rookie = net.peer(&name);
    assert_eq!(
        rookie.block_store().tip_hash(),
        net.peer("peer0.org1").block_store().tip_hash()
    );
    let ns = ChaincodeId::new("guarded");
    let col = CollectionName::new("PDC1");
    assert!(rookie
        .world_state()
        .get_private(&ns, &col, "secret")
        .is_none());
    assert!(rookie
        .world_state()
        .get_private_hash(&ns, &col, "secret")
        .is_some());
}

#[test]
fn joined_peer_participates_in_new_transactions() {
    let mut net = seeded_network(1102);
    let name = net.add_peer("Org2MSP");
    // The new peer can endorse (MAJORITY: org1 + the new org2 peer covers
    // two orgs) and commits new blocks alongside everyone else.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["post-join", "7"],
            &[],
            &["peer0.org1", &name],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    for peer in ["peer0.org1", "peer0.org2", &name] {
        assert_eq!(
            net.peer(peer)
                .world_state()
                .get_private(
                    &ChaincodeId::new("guarded"),
                    &CollectionName::new("PDC1"),
                    "post-join"
                )
                .unwrap()
                .value,
            b"7",
            "{peer}"
        );
    }
}

#[test]
#[should_panic(expected = "not an organization")]
fn unknown_org_cannot_join() {
    let mut net = seeded_network(1103);
    let _ = net.add_peer("Org9MSP");
}
