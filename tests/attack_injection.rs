//! §V-A1–A4: the four fake PDC results injection attacks against the
//! default `MAJORITY Endorsement` chaincode-level policy, on the paper's
//! 3-org prototype (org1 + org3 malicious, org2 the victim).

use fabric_pdc::attacks::{build_lab, run_attack, AttackKind, LabConfig};
use fabric_pdc::prelude::*;

const NS: &str = "guarded";
const COL: &str = "PDC1";

#[test]
fn fake_read_result_injection() {
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeRead);
    assert!(outcome.succeeded, "{}", outcome.note);
    assert_eq!(outcome.validation_code, Some(TxValidationCode::Valid));
    // The genuine value is untouched — the lie lives in the blockchain.
    let v = lab
        .net
        .peer("peer0.org2")
        .world_state()
        .get_private(&ChaincodeId::new(NS), &CollectionName::new(COL), "k1")
        .unwrap();
    assert_eq!(v.value, b"12");
}

#[test]
fn fake_read_transaction_is_committed_at_every_peer() {
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeRead);
    assert!(outcome.succeeded);
    // All three peers recorded the fabricated transaction as VALID — the
    // immutable blockchain now contains the fake value.
    for peer in ["peer0.org1", "peer0.org2", "peer0.org3"] {
        let store = lab.net.peer(peer).block_store();
        assert!(store.verify_chain());
        let found = store.iter().any(|b| {
            b.validated_transactions()
                .any(|(tx, code)| code.is_valid() && tx.payload.response.payload == b"3".to_vec())
        });
        assert!(found, "{peer} lacks the fabricated read");
    }
}

#[test]
fn fake_write_result_injection() {
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeWrite);
    assert!(outcome.succeeded, "{}", outcome.note);
    // The victim's world state violates its own business rule (> 10).
    let v = lab
        .net
        .peer("peer0.org2")
        .world_state()
        .get_private(&ChaincodeId::new(NS), &CollectionName::new(COL), "k1")
        .unwrap();
    assert_eq!(v.value, b"5");
    // org2's own chaincode would have refused this value.
    assert!(!Guard::GreaterThan(10).allows(5));
}

#[test]
fn fake_read_write_result_injection() {
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeReadWrite);
    assert!(outcome.succeeded, "{}", outcome.note);
    // Colluders pretended k1 = 3 and added 2; the genuine 12 was ignored.
    let v = lab
        .net
        .peer("peer0.org2")
        .world_state()
        .get_private(&ChaincodeId::new(NS), &CollectionName::new(COL), "k1")
        .unwrap();
    assert_eq!(v.value, b"5");
}

#[test]
fn pdc_delete_attack() {
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeDelete);
    assert!(outcome.succeeded, "{}", outcome.note);
    let ws = lab.net.peer("peer0.org2").world_state();
    assert!(ws
        .get_private(&ChaincodeId::new(NS), &CollectionName::new(COL), "k1")
        .is_none());
    assert!(ws
        .get_private_hash(&ChaincodeId::new(NS), &CollectionName::new(COL), "k1")
        .is_none());
}

#[test]
fn honest_victim_cannot_distinguish_the_fabrication_by_version() {
    // The heart of §IV-A1: the MVCC check compares only versions, so a
    // forged read with the GetPrivateDataHash version passes at honest
    // peers. Demonstrate that the committed fake-read tx carries the same
    // version the genuine data has.
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeRead);
    assert!(outcome.succeeded);
    let ns = ChaincodeId::new(NS);
    let col = CollectionName::new(COL);
    let genuine_version = lab
        .net
        .peer("peer0.org2")
        .world_state()
        .get_private(&ns, &col, "k1")
        .unwrap()
        .version;
    let store = lab.net.peer("peer0.org2").block_store();
    let fake_tx_version = store
        .iter()
        .flat_map(|b| b.transactions.iter())
        .filter(|tx| tx.payload.response.payload == b"3".to_vec())
        .flat_map(|tx| tx.payload.results.ns_rwsets.iter())
        .flat_map(|ns| ns.collections.iter())
        .flat_map(|c| c.reads.iter())
        .next()
        .and_then(|r| r.version);
    assert_eq!(fake_tx_version, Some(genuine_version));
}
