//! Edge-case coverage across subsystems that the scenario tests don't
//! reach: orderer batching behaviour, deep policy nesting, identity
//! corner cases, and hostile-input handling at the network boundary.

use fabric_pdc::orderer::{BatchConfig, OrderingService};
use fabric_pdc::policy::SignaturePolicy;
use fabric_pdc::prelude::*;
use std::sync::Arc;

#[test]
fn orderer_timeout_resets_after_each_cut() {
    let mut o = OrderingService::new(
        3,
        1200,
        BatchConfig {
            max_message_count: 100,
            batch_timeout_ticks: 5,
        },
    );
    assert!(o.run_until_ready(2000));
    assert_eq!(o.pending_len(), 0);

    // Nothing pending: ticking never cuts empty blocks.
    o.run_ticks(20);
    assert!(o.take_blocks().is_empty());
}

#[test]
fn deeply_nested_policy_parses_and_evaluates() {
    let expr = "OR(AND('Org1MSP.peer',OR('Org2MSP.peer','Org3MSP.peer')),\
                OutOf(2,'Org4MSP.peer','Org5MSP.peer',AND('Org1MSP.admin','Org2MSP.admin')))";
    let policy = SignaturePolicy::parse(expr).unwrap();

    let peer = |org: &str, seed: u64| {
        Identity::new(
            org,
            Role::Peer,
            Keypair::generate_from_seed(seed).public_key(),
        )
    };
    let admin = |org: &str, seed: u64| {
        Identity::new(
            org,
            Role::Admin,
            Keypair::generate_from_seed(seed).public_key(),
        )
    };

    // Left branch: org1 peer + org3 peer.
    assert!(policy.satisfied_by(&[peer("Org1MSP", 1), peer("Org3MSP", 3)]));
    // Right branch: org4 peer + the nested AND of two admins.
    assert!(policy.satisfied_by(&[
        peer("Org4MSP", 4),
        admin("Org1MSP", 11),
        admin("Org2MSP", 12)
    ]));
    // Near misses fail.
    assert!(!policy.satisfied_by(&[peer("Org1MSP", 1)]));
    assert!(!policy.satisfied_by(&[peer("Org4MSP", 4), admin("Org1MSP", 11)]));
}

#[test]
fn hash256_hex_accepts_uppercase_and_rejects_junk() {
    let d = sha256(b"case");
    let upper = d.to_hex().to_ascii_uppercase();
    assert_eq!(Hash256::from_hex(&upper), Some(d));
    assert_eq!(Hash256::from_hex(&"g".repeat(64)), None);
    // Multi-byte UTF-8 of the right char-length must not panic.
    assert_eq!(Hash256::from_hex(&"é".repeat(32)), None);
}

#[test]
fn proposal_to_unknown_channel_is_cleanly_refused() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(1201)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));

    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(1202),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        ChannelId::new("other-channel"),
        ChaincodeId::new("assets"),
        "ReadAsset",
        vec![b"x".to_vec()],
        Default::default(),
    );
    let err = net.endorse("peer0.org1", &proposal).unwrap_err();
    assert!(matches!(err, NetworkError::Endorse { .. }));
}

#[test]
fn foreign_channel_transaction_is_invalidated_not_committed() {
    // A transaction assembled for another channel that somehow reaches this
    // channel's orderer must be flagged BAD_PAYLOAD by every peer.
    let mut net1 = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(1203)
        .build();
    net1.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    let mut net2 = NetworkBuilder::new("ch2")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(1203)
        .build();
    net2.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));

    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(1204),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        ChannelId::new("ch2"),
        ChaincodeId::new("assets"),
        "CreateAsset",
        vec![
            b"a1".to_vec(),
            b"red".to_vec(),
            b"alice".to_vec(),
            b"1".to_vec(),
        ],
        Default::default(),
    );
    let r1 = net2.endorse("peer0.org1", &proposal).unwrap();
    let r2 = net2.endorse("peer0.org2", &proposal).unwrap();
    let (tx, _) = client.assemble_transaction(&proposal, &[r1, r2]).unwrap();

    // Cross-submit to channel 1's orderer.
    let tx_id = tx.tx_id.clone();
    net1.submit(tx);
    for _ in 0..200 {
        net1.advance(1);
        if net1.transaction_status(&tx_id).is_some() {
            break;
        }
    }
    assert_eq!(
        net1.transaction_status(&tx_id),
        Some(TxValidationCode::BadPayload)
    );
    assert!(net1
        .peer("peer0.org1")
        .world_state()
        .get_public(&ChaincodeId::new("assets"), "a1")
        .is_none());
}

#[test]
fn empty_args_and_unicode_keys_survive_the_full_pipeline() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(1205)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    // Unicode asset id round-trips through rwsets, hashing and commit.
    let id = "资产-α-🚀";
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &[id, "rouge", "aliče", "7"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    let payload = net
        .evaluate_transaction("client0.org1", "peer0.org2", "assets", "ReadAsset", &[id])
        .unwrap();
    assert_eq!(Asset::from_bytes(&payload).unwrap().owner, "aliče");
}
