//! Table II, re-run as an integration test: every attack × configuration
//! cell on a freshly built prototype network.

use fabric_pdc::attacks::{render_table2, run_table2};

#[test]
fn table2_reproduces_the_paper() {
    let rows = run_table2(20210704);
    let rendered = render_table2(&rows);
    println!("{rendered}");

    // Encode the paper's table as the expected matrix.
    // Columns: MAJORITY, 2OutOf5, AND(org1,org2), Feature1, Original, Feature2.
    let expect: [(&str, [Option<bool>; 6]); 6] = [
        (
            "Read-Only",
            [Some(true), Some(true), Some(true), Some(false), None, None],
        ),
        (
            "Write-Only",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "Read-Write",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "Delete-Related",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "PDC-Read",
            [None, None, None, None, Some(true), Some(false)],
        ),
        (
            "PDC-Write",
            [None, None, None, None, Some(true), Some(false)],
        ),
    ];

    for (row, (label, cells)) in rows.iter().zip(expect.iter()) {
        assert_eq!(&row.label, label);
        for (i, expected) in cells.iter().enumerate() {
            assert_eq!(
                &row.cells[i].works, expected,
                "{label} / column {} ({})",
                i, row.cells[i].config
            );
        }
    }
}
