//! Table II, re-run as an integration test: every attack × configuration
//! cell on a freshly built prototype network — plus the forensic side of
//! the story: every attack must leave a trail in the shared telemetry
//! pipeline's security-audit event stream.

use fabric_pdc::attacks::{
    build_lab, render_table2, run_attack, run_table2, AttackKind, LabConfig,
};
use fabric_pdc::prelude::*;

#[test]
fn table2_reproduces_the_paper() {
    let rows = run_table2(20210704);
    let rendered = render_table2(&rows);
    println!("{rendered}");

    // Encode the paper's table as the expected matrix.
    // Columns: MAJORITY, 2OutOf5, AND(org1,org2), Feature1, Original, Feature2.
    let expect: [(&str, [Option<bool>; 6]); 6] = [
        (
            "Read-Only",
            [Some(true), Some(true), Some(true), Some(false), None, None],
        ),
        (
            "Write-Only",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "Read-Write",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "Delete-Related",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "PDC-Read",
            [None, None, None, None, Some(true), Some(false)],
        ),
        (
            "PDC-Write",
            [None, None, None, None, Some(true), Some(false)],
        ),
    ];

    for (row, (label, cells)) in rows.iter().zip(expect.iter()) {
        assert_eq!(&row.label, label);
        for (i, expected) in cells.iter().enumerate() {
            assert_eq!(
                &row.cells[i].works, expected,
                "{label} / column {} ({})",
                i, row.cells[i].config
            );
        }
    }
}

/// Every injection attack — succeeding or not — trips at least one
/// security-audit event on the lab's shared telemetry pipeline. On the
/// paper's default configuration each attack shows both Use Case 1 (the
/// non-member org3 endorsed a PDC transaction) and Use Case 2 (PDC1
/// defines no endorsement policy of its own, so validation fell back to
/// the chaincode level).
#[test]
fn every_attack_leaves_an_audit_trail() {
    let org3 = OrgId::new("Org3MSP");
    for kind in AttackKind::all() {
        let mut lab = build_lab(&LabConfig::default());
        let outcome = run_attack(&mut lab, kind);
        assert!(
            !outcome.audit_events.is_empty(),
            "{kind}: attack left no audit events"
        );
        assert!(
            outcome.audit_events.iter().any(|e| matches!(
                e,
                AuditEvent::EndorsementByNonMember { endorser_org, .. } if *endorser_org == org3
            )),
            "{kind}: non-member endorsement by org3 not audited (Use Case 1)"
        );
        assert!(
            outcome
                .audit_events
                .iter()
                .any(|e| matches!(e, AuditEvent::PolicyFallbackToChaincodeLevel { .. })),
            "{kind}: chaincode-level policy fallback not audited (Use Case 2)"
        );
        // The non-member endorsement is an attack signal: the lab's flight
        // recorder must have auto-dumped forensic context around it.
        let recorder = lab
            .net
            .telemetry()
            .and_then(|t| t.flight_recorder())
            .expect("lab attaches a flight recorder");
        assert!(
            !recorder.dumps().is_empty(),
            "{kind}: attack signal did not trigger a flight-recorder dump"
        );
        assert!(
            recorder.dumps().iter().any(|d| d
                .audit_signature()
                .iter()
                .any(|(k, _)| *k == "endorsement_by_non_member")),
            "{kind}: no dump carries the non-member endorsement"
        );
    }
}

/// The read forgery commits the fabricated value through the transaction's
/// plaintext response payload — the Use Case 3 signal.
#[test]
fn read_forgery_reports_plaintext_payload() {
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeRead);
    assert!(
        outcome.succeeded,
        "read forgery works on the original config"
    );
    assert!(
        outcome
            .audit_events
            .iter()
            .any(|e| matches!(e, AuditEvent::PlaintextPayloadInTx { .. })),
        "plaintext payload commit not audited (Use Case 3)"
    );
}

/// When the supplemental non-member-endorser filter stops an attack, the
/// rejection itself is audited.
#[test]
fn filter_defense_rejection_is_audited() {
    let cfg = LabConfig {
        defense: DefenseConfig {
            filter_non_member_endorsers: true,
            ..DefenseConfig::original()
        },
        ..LabConfig::default()
    };
    let mut lab = build_lab(&cfg);
    let outcome = run_attack(&mut lab, AttackKind::FakeWrite);
    assert!(
        !outcome.succeeded,
        "the filter defense stops the fake write"
    );
    assert_eq!(
        outcome.validation_code,
        Some(TxValidationCode::NonMemberEndorsement)
    );
    assert!(
        outcome
            .audit_events
            .iter()
            .any(|e| matches!(e, AuditEvent::DefenseRejected { .. })),
        "defense rejection not audited"
    );
    let recorder = lab
        .net
        .telemetry()
        .and_then(|t| t.flight_recorder())
        .expect("lab attaches a flight recorder");
    assert!(
        recorder.dumps().iter().any(|d| d
            .audit_signature()
            .iter()
            .any(|(k, _)| *k == "defense_rejected")),
        "the defense rejection did not trigger a flight-recorder dump"
    );
}
