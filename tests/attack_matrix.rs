//! Table II, re-run as an integration test: every attack × configuration
//! cell on a freshly built prototype network — plus the forensic side of
//! the story: every attack must leave a trail in the shared telemetry
//! pipeline's security-audit event stream.

use fabric_pdc::attacks::{
    build_lab, render_table2, run_attack, run_table2, AttackKind, LabConfig,
};
use fabric_pdc::monitor::{DEFENSE_RULE, MVCC_STORM_RULE, UC1_RULE, UC2_RULE, UC3_RULE};
use fabric_pdc::prelude::*;
use std::collections::BTreeSet;

/// The rules a transition list fired, deduplicated and sorted.
fn fired_rules(alerts: &[AlertTransition]) -> BTreeSet<String> {
    alerts
        .iter()
        .filter(|t| t.to == AlertPhase::Firing)
        .map(|t| t.rule.clone())
        .collect()
}

#[test]
fn table2_reproduces_the_paper() {
    let rows = run_table2(20210704);
    let rendered = render_table2(&rows);
    println!("{rendered}");

    // Encode the paper's table as the expected matrix.
    // Columns: MAJORITY, 2OutOf5, AND(org1,org2), Feature1, Original, Feature2.
    let expect: [(&str, [Option<bool>; 6]); 6] = [
        (
            "Read-Only",
            [Some(true), Some(true), Some(true), Some(false), None, None],
        ),
        (
            "Write-Only",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "Read-Write",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "Delete-Related",
            [Some(true), Some(true), Some(false), Some(false), None, None],
        ),
        (
            "PDC-Read",
            [None, None, None, None, Some(true), Some(false)],
        ),
        (
            "PDC-Write",
            [None, None, None, None, Some(true), Some(false)],
        ),
    ];

    for (row, (label, cells)) in rows.iter().zip(expect.iter()) {
        assert_eq!(&row.label, label);
        for (i, expected) in cells.iter().enumerate() {
            assert_eq!(
                &row.cells[i].works, expected,
                "{label} / column {} ({})",
                i, row.cells[i].config
            );
        }
    }
}

/// Every injection attack — succeeding or not — trips at least one
/// security-audit event on the lab's shared telemetry pipeline. On the
/// paper's default configuration each attack shows both Use Case 1 (the
/// non-member org3 endorsed a PDC transaction) and Use Case 2 (PDC1
/// defines no endorsement policy of its own, so validation fell back to
/// the chaincode level).
#[test]
fn every_attack_leaves_an_audit_trail() {
    let org3 = OrgId::new("Org3MSP");
    for kind in AttackKind::all() {
        let mut lab = build_lab(&LabConfig::default());
        let outcome = run_attack(&mut lab, kind);
        assert!(
            !outcome.audit_events.is_empty(),
            "{kind}: attack left no audit events"
        );
        assert!(
            outcome.audit_events.iter().any(|e| matches!(
                e,
                AuditEvent::EndorsementByNonMember { endorser_org, .. } if *endorser_org == org3
            )),
            "{kind}: non-member endorsement by org3 not audited (Use Case 1)"
        );
        assert!(
            outcome
                .audit_events
                .iter()
                .any(|e| matches!(e, AuditEvent::PolicyFallbackToChaincodeLevel { .. })),
            "{kind}: chaincode-level policy fallback not audited (Use Case 2)"
        );
        // The non-member endorsement is an attack signal: the lab's flight
        // recorder must have auto-dumped forensic context around it.
        let recorder = lab
            .net
            .telemetry()
            .and_then(|t| t.flight_recorder())
            .expect("lab attaches a flight recorder");
        assert!(
            !recorder.dumps().is_empty(),
            "{kind}: attack signal did not trigger a flight-recorder dump"
        );
        assert!(
            recorder.dumps().iter().any(|d| d
                .audit_signature()
                .iter()
                .any(|(k, _)| *k == "endorsement_by_non_member")),
            "{kind}: no dump carries the non-member endorsement"
        );
    }
}

/// Every attack-lab scenario fires exactly its mapped alert rules, with
/// forensic flight dumps attached to the firing alerts. The monitor is
/// re-baselined after lab seeding, so every transition in
/// `outcome.alerts` was provoked by the attack itself.
#[test]
fn every_attack_fires_exactly_its_mapped_alerts() {
    for kind in AttackKind::all() {
        let mut lab = build_lab(&LabConfig::default());
        let outcome = run_attack(&mut lab, kind);
        // UC1 (non-member endorsement) and UC2 (policy fallback) fire on
        // every injection attack; UC3 (plaintext payload) additionally
        // fires whenever the fabricated transaction carries a response
        // payload — the read forgery's whole point, and a side effect of
        // the colluding chaincode echoing values on the write paths.
        let expected: BTreeSet<String> = [UC1_RULE, UC2_RULE]
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut fired = fired_rules(&outcome.alerts);
        // Tolerate UC3 presence per payload shape but pin everything else.
        let had_uc3 = fired.remove(UC3_RULE);
        assert_eq!(fired, expected, "{kind}: unexpected alert set");
        if kind == AttackKind::FakeRead {
            assert!(had_uc3, "{kind}: plaintext payload alert missing");
        }
        // No defense ran and no storm happened: those rules stay quiet.
        for rule in [DEFENSE_RULE, MVCC_STORM_RULE, "node_critical"] {
            assert!(
                !outcome.alerts.iter().any(|t| t.rule == rule),
                "{kind}: {rule} fired spuriously"
            );
        }
        // Every firing alert of the UC1 rule carries forensic context.
        let monitor = lab.net.monitor().expect("lab attaches a monitor");
        let uc1_alert = monitor
            .active_alerts()
            .into_iter()
            .find(|a| a.rule == UC1_RULE && a.phase == AlertPhase::Firing)
            .unwrap_or_else(|| panic!("{kind}: uc1 alert not firing"));
        let dump = uc1_alert
            .forensics
            .unwrap_or_else(|| panic!("{kind}: uc1 alert has no flight dump"));
        assert!(
            dump.audit_signature()
                .iter()
                .any(|(k, _)| *k == "endorsement_by_non_member"),
            "{kind}: dump does not carry the non-member endorsement"
        );
    }
}

/// When the supplemental filter defense stops the attack, the monitor
/// raises the defense-rejection alert alongside the use-case ones.
#[test]
fn defended_attack_raises_the_defense_rejection_alert() {
    let cfg = LabConfig {
        defense: DefenseConfig {
            filter_non_member_endorsers: true,
            ..DefenseConfig::original()
        },
        ..LabConfig::default()
    };
    let mut lab = build_lab(&cfg);
    let outcome = run_attack(&mut lab, AttackKind::FakeWrite);
    assert!(!outcome.succeeded);
    let fired = fired_rules(&outcome.alerts);
    assert!(
        fired.contains(DEFENSE_RULE),
        "defense rejection did not alert: {fired:?}"
    );
    assert!(fired.contains(UC1_RULE), "{fired:?}");
}

/// A fully defended, correctly configured monitored network: hardened
/// defenses everywhere, a collection-level endorsement policy, honest
/// chaincode on every peer.
fn defended_monitored_net() -> (FabricNetwork, Monitor) {
    let telemetry = Telemetry::with_flight_recorder(256);
    let monitor = Monitor::new(&telemetry);
    let mut net = NetworkBuilder::new("mychannel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(77)
        .defense(DefenseConfig::hardened())
        .with_telemetry(telemetry)
        .with_monitor(monitor.clone())
        .build();
    let definition = ChaincodeDefinition::new("guarded").with_collection(
        CollectionConfig::membership_of("PDC1", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
    );
    net.deploy_chaincode(
        definition,
        std::sync::Arc::new(GuardedPdc::unconstrained("PDC1")),
    );
    (net, monitor)
}

/// An honest workload on a fully defended, correctly configured network
/// raises no alert at all: the monitor stays silent end to end.
#[test]
fn honest_defended_run_fires_nothing() {
    let (mut net, monitor) = defended_monitored_net();
    // A run of honest member-endorsed writes plus quiet ticks.
    for (i, value) in [(1, 12), (2, 13), (3, 14)] {
        let outcome = net
            .submit_transaction(
                "client0.org1",
                "guarded",
                "write",
                &[&format!("h{i}"), &value.to_string()],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .expect("honest write commits");
        assert!(outcome.validation_code.is_valid());
    }
    net.advance(80);
    assert!(
        monitor.transitions().is_empty(),
        "honest defended traffic alerted: {:?}",
        monitor.transitions()
    );
    assert!(monitor.firing_rules().is_empty());
    // And the health model agrees everything is fine.
    let status = monitor.status();
    assert!(
        status
            .nodes
            .iter()
            .all(|n| n.verdict == fabric_pdc::monitor::HealthVerdict::Healthy),
        "{status:?}"
    );
}

/// A burst of MVCC conflicts — several stale transactions aborting in one
/// block — trips the storm detector, while the isolated conflict of
/// ordinary contention does not.
#[test]
fn mvcc_abort_storm_alerts_on_a_burst() {
    let (mut net, monitor) = defended_monitored_net();
    net.submit_transaction(
        "client0.org1",
        "guarded",
        "write",
        &["k1", "12"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();

    // Stash several transactions endorsed against the same (pre-commit)
    // version of k1...
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(990),
        DefenseConfig::hardened(),
    );
    let mut stale = Vec::new();
    for _ in 0..3 {
        let proposal = client.create_proposal(
            net.channel().clone(),
            ChaincodeId::new("guarded"),
            "add",
            vec![b"k1".to_vec(), b"1".to_vec()],
            Default::default(),
        );
        let r1 = net.endorse("peer0.org1", &proposal).unwrap();
        let r2 = net.endorse("peer0.org2", &proposal).unwrap();
        let (tx, _) = client.assemble_transaction(&proposal, &[r1, r2]).unwrap();
        stale.push(tx);
    }
    // ...let a fresh write invalidate them all...
    net.submit_transaction(
        "client0.org1",
        "guarded",
        "write",
        &["k1", "13"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    // ...and commit the stale batch in one block: every honest peer
    // reports an MVCC abort for each, well past 4x the quiet baseline.
    for tx in stale {
        net.submit(tx);
    }
    net.advance(10);
    let fired = fired_rules(&monitor.transitions());
    assert!(
        fired.contains(MVCC_STORM_RULE),
        "storm did not alert: {fired:?}"
    );
    // The storm is the only attack-class alert: no use-case rule fired.
    for rule in [UC1_RULE, UC2_RULE, UC3_RULE, DEFENSE_RULE] {
        assert!(!fired.contains(rule), "{rule} fired spuriously: {fired:?}");
    }
}

/// The full alert pipeline — detectors, health, hysteresis, transition
/// log — is bit-identical across the parallel-validation knob.
#[test]
fn alert_log_is_identical_across_the_parallelism_knob() {
    let run = |parallel: bool| {
        let mut lab = build_lab(&LabConfig::default());
        lab.net.set_parallel_validation(parallel);
        let mut transitions = Vec::new();
        for kind in AttackKind::all() {
            transitions.extend(run_attack(&mut lab, kind).alerts);
        }
        lab.net.advance(100);
        let monitor = lab.net.monitor().expect("lab attaches a monitor");
        (transitions, monitor.transitions(), monitor.alerts_jsonl())
    };
    let sequential = run(false);
    let parallel = run(true);
    assert_eq!(sequential, parallel);
    assert!(!sequential.1.is_empty(), "the attacks alerted");
}

/// The read forgery commits the fabricated value through the transaction's
/// plaintext response payload — the Use Case 3 signal.
#[test]
fn read_forgery_reports_plaintext_payload() {
    let mut lab = build_lab(&LabConfig::default());
    let outcome = run_attack(&mut lab, AttackKind::FakeRead);
    assert!(
        outcome.succeeded,
        "read forgery works on the original config"
    );
    assert!(
        outcome
            .audit_events
            .iter()
            .any(|e| matches!(e, AuditEvent::PlaintextPayloadInTx { .. })),
        "plaintext payload commit not audited (Use Case 3)"
    );
}

/// When the supplemental non-member-endorser filter stops an attack, the
/// rejection itself is audited.
#[test]
fn filter_defense_rejection_is_audited() {
    let cfg = LabConfig {
        defense: DefenseConfig {
            filter_non_member_endorsers: true,
            ..DefenseConfig::original()
        },
        ..LabConfig::default()
    };
    let mut lab = build_lab(&cfg);
    let outcome = run_attack(&mut lab, AttackKind::FakeWrite);
    assert!(
        !outcome.succeeded,
        "the filter defense stops the fake write"
    );
    assert_eq!(
        outcome.validation_code,
        Some(TxValidationCode::NonMemberEndorsement)
    );
    assert!(
        outcome
            .audit_events
            .iter()
            .any(|e| matches!(e, AuditEvent::DefenseRejected { .. })),
        "defense rejection not audited"
    );
    let recorder = lab
        .net
        .telemetry()
        .and_then(|t| t.flight_recorder())
        .expect("lab attaches a flight recorder");
    assert!(
        recorder.dumps().iter().any(|d| d
            .audit_signature()
            .iter()
            .any(|(k, _)| *k == "defense_rejected")),
        "the defense rejection did not trigger a flight-recorder dump"
    );
}
