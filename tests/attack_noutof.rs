//! §V-A5: attacks under the `2OutOf(org1..org5)` endorsement policy.
//! Only the two malicious *non-member* organizations (org3, org4) collude —
//! no PDC member participates, and far fewer than 51 % of organizations
//! are malicious.

use fabric_pdc::attacks::{build_lab, run_attack, AttackKind, ChaincodePolicy, LabConfig};
use fabric_pdc::prelude::*;

fn noutof_config(seed: u64) -> LabConfig {
    LabConfig {
        org_count: 5,
        chaincode_policy: ChaincodePolicy::NOutOf(2),
        seed,
        ..LabConfig::default()
    }
}

#[test]
fn all_four_attacks_succeed_with_only_non_member_colluders() {
    for (i, kind) in AttackKind::all().into_iter().enumerate() {
        let cfg = noutof_config(900 + i as u64);
        // Sanity: the attackers are PDC non-members only.
        assert_eq!(cfg.malicious_peers(), vec!["peer0.org3", "peer0.org4"]);
        let mut lab = build_lab(&cfg);
        let outcome = run_attack(&mut lab, kind);
        assert!(outcome.succeeded, "{kind}: {}", outcome.note);
        assert_eq!(outcome.validation_code, Some(TxValidationCode::Valid));
    }
}

#[test]
fn two_of_five_is_far_below_majority() {
    let cfg = noutof_config(950);
    // 2 malicious orgs of 5 = 40 % — the paper's point that NOutOf can be
    // exploited without a 51 % coalition.
    assert!(cfg.malicious_peers().len() * 2 < cfg.org_count * 2 + 1);
    let mut lab = build_lab(&cfg);
    let outcome = run_attack(&mut lab, AttackKind::FakeWrite);
    assert!(outcome.succeeded, "{}", outcome.note);
    // Victims: BOTH collection members (org1 and org2) committed the
    // injected value without any member endorsement existing.
    for victim in ["peer0.org1", "peer0.org2"] {
        let v = lab
            .net
            .peer(victim)
            .world_state()
            .get_private(
                &ChaincodeId::new("guarded"),
                &CollectionName::new("PDC1"),
                "k1",
            )
            .unwrap();
        assert_eq!(v.value, b"5", "{victim}");
    }
}

#[test]
fn noutof_with_defense_filter_blocks_non_members() {
    let cfg = LabConfig {
        defense: DefenseConfig {
            filter_non_member_endorsers: true,
            ..DefenseConfig::original()
        },
        ..noutof_config(960)
    };
    let mut lab = build_lab(&cfg);
    let outcome = run_attack(&mut lab, AttackKind::FakeWrite);
    assert!(!outcome.succeeded);
    assert_eq!(
        outcome.validation_code,
        Some(TxValidationCode::NonMemberEndorsement)
    );
}
