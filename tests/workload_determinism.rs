//! The workload harness is a measurement instrument, so its schedule
//! and its tick-denominated results must be reproducible: same seed and
//! config ⇒ the same arrivals, the same commit/abort/audit/alert
//! accounting, bit for bit — including across the validation-parallelism
//! knob, which must change wall-clock timing only.
//!
//! Wall-clock phase quantiles are explicitly NOT compared;
//! `LoadPoint::deterministic_signature` excludes them by construction.

use fabric_pdc::workload::{run, OpMix, WorkloadConfig};

fn cfg(parallel_validation: bool) -> WorkloadConfig {
    WorkloadConfig {
        seed: 7,
        extra_peers: 1,
        virtual_clients: 5_000,
        key_space: 24,
        zipf_skew: 0.99,
        mix: OpMix::pdc_heavy(),
        offered_rate: 3.0,
        ticks: 60,
        window_ticks: 20,
        block_txs: 4,
        block_to_live: 16,
        endorser_failure_prob: 0.05,
        adversarial_fraction: 0.05,
        parallel_validation,
    }
}

#[test]
fn same_seed_and_config_reproduce_the_load_point_exactly() {
    let a = run(&cfg(false));
    let b = run(&cfg(false));
    assert_eq!(
        a.deterministic_signature(),
        b.deterministic_signature(),
        "two runs of the same seed+config must agree on every tick-deterministic field"
    );
    // The signature covers real traffic, not a degenerate empty run.
    assert!(a.committed > 0 && a.offered == 180, "{a:?}");
}

#[test]
fn parallel_validation_changes_wall_clock_only() {
    let sequential = run(&cfg(false));
    let parallel = run(&cfg(true));
    assert_eq!(
        sequential.deterministic_signature(),
        parallel.deterministic_signature(),
        "the parallelism knob must not leak into schedule, outcomes, audits, or alerts"
    );
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = run(&cfg(false));
    let mut other = cfg(false);
    other.seed = 8;
    let b = run(&other);
    assert_ne!(
        a.deterministic_signature(),
        b.deterministic_signature(),
        "the seed must actually drive the schedule"
    );
}
