//! Chaincode events end to end: emitted during simulation, committed with
//! the transaction, delivered only for VALID transactions.

use fabric_pdc::prelude::*;
use std::sync::Arc;

fn network(seed: u64) -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    net
}

#[test]
fn valid_transactions_deliver_their_events() {
    let mut net = network(1000);
    let created = net
        .submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &["a1", "red", "alice", "10"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    let transferred = net
        .submit_transaction(
            "client0.org2",
            "assets",
            "TransferAsset",
            &["a1", "bob"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();

    let events = net.drain_events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].0, created.tx_id);
    assert_eq!(events[0].1.name, "CreateAsset");
    assert_eq!(events[0].1.payload, b"a1");
    assert_eq!(events[1].0, transferred.tx_id);
    assert_eq!(events[1].1.name, "TransferAsset");
    assert_eq!(events[1].1.payload, b"a1:alice->bob");

    // Draining again yields nothing.
    assert!(net.drain_events().is_empty());
}

#[test]
fn invalid_transactions_emit_no_events() {
    let mut net = network(1001);
    net.submit_transaction(
        "client0.org1",
        "assets",
        "CreateAsset",
        &["a1", "red", "alice", "10"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    net.drain_events();

    // A create endorsed by one peer only: committed as invalid
    // (endorsement policy failure), so its event must not be delivered.
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(1002),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        net.channel().clone(),
        ChaincodeId::new("assets"),
        "CreateAsset",
        vec![
            b"a2".to_vec(),
            b"red".to_vec(),
            b"alice".to_vec(),
            b"1".to_vec(),
        ],
        Default::default(),
    );
    let r1 = net.endorse("peer0.org1", &proposal).unwrap();
    let (tx, _) = client.assemble_transaction(&proposal, &[r1]).unwrap();
    let tx_id = tx.tx_id.clone();
    net.submit(tx);
    for _ in 0..200 {
        net.advance(1);
        if net.transaction_status(&tx_id).is_some() {
            break;
        }
    }
    assert_eq!(
        net.transaction_status(&tx_id),
        Some(TxValidationCode::EndorsementPolicyFailure)
    );
    assert!(net.drain_events().is_empty());
}

#[test]
fn events_are_committed_inside_the_transaction() {
    // The event is part of the signed payload: tampering with it breaks
    // the endorsement signatures.
    let mut net = network(1003);
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &["a1", "red", "alice", "10"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    let store = net.peer("peer0.org3").block_store();
    let (tx, _) = store.transaction(&outcome.tx_id).unwrap();
    assert_eq!(tx.payload.event.as_ref().unwrap().name, "CreateAsset");
    let mut tampered = tx.clone();
    tampered.payload.event = None;
    assert!(!tampered.verify_endorsement_signatures());
}
