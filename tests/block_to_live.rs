//! `BlockToLive` end to end: private data is purged from member stores
//! after the configured number of blocks, while the blockchain itself is
//! untouched (the paper's §III description of PDC lifecycle).

use fabric_pdc::prelude::*;
use std::sync::Arc;

#[test]
fn private_data_purges_after_btl_blocks() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(995)
        .build();
    let def = ChaincodeDefinition::new("guarded").with_collection(
        CollectionConfig::membership_of("PDC1", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_member_only_read(false)
            .with_block_to_live(2),
    );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained("PDC1")));

    // Commit the secret at block 0.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["ephemeral", "42"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    let ns = ChaincodeId::new("guarded");
    let col = CollectionName::new("PDC1");
    assert!(net
        .peer("peer0.org1")
        .world_state()
        .get_private(&ns, &col, "ephemeral")
        .is_some());

    // Advance the chain past the BTL window with unrelated writes.
    for i in 0..3 {
        let key = format!("filler{i}");
        net.submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &[&key, "1"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    }

    // The ephemeral value (and its hash) is gone at every peer...
    for peer in ["peer0.org1", "peer0.org2", "peer0.org3"] {
        assert!(
            net.peer(peer)
                .world_state()
                .get_private(&ns, &col, "ephemeral")
                .is_none(),
            "{peer} plaintext"
        );
        assert!(
            net.peer(peer)
                .world_state()
                .get_private_hash(&ns, &col, "ephemeral")
                .is_none(),
            "{peer} hash"
        );
    }
    // ...while fresher private data survives.
    assert!(net
        .peer("peer0.org1")
        .world_state()
        .get_private(&ns, &col, "filler2")
        .is_some());
    // The blockchain itself is immutable: the old transaction is still
    // there, hashes intact.
    let store = net.peer("peer0.org3").block_store();
    assert!(store.verify_chain());
    assert!(store.transaction(&outcome.tx_id).is_some());
}

#[test]
fn btl_zero_keeps_data_forever() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(996)
        .build();
    let def = ChaincodeDefinition::new("guarded").with_collection(
        CollectionConfig::membership_of("PDC1", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_member_only_read(false),
    );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained("PDC1")));
    net.submit_transaction(
        "client0.org1",
        "guarded",
        "write",
        &["durable", "42"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    for i in 0..5 {
        let key = format!("filler{i}");
        net.submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &[&key, "1"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    }
    assert!(net
        .peer("peer0.org1")
        .world_state()
        .get_private(
            &ChaincodeId::new("guarded"),
            &CollectionName::new("PDC1"),
            "durable"
        )
        .is_some());
}
