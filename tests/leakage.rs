//! §V-B: PDC leakage through the plaintext `payload` field, reproduced on
//! the two vulnerable GitHub projects' chaincode shapes (Listings 1 & 2).

use fabric_pdc::attacks::{
    extract_payload_leaks, run_read_leakage_scenario, run_write_leakage_scenario,
};
use fabric_pdc::prelude::*;
use std::sync::Arc;

#[test]
fn read_transactions_leak_to_non_members() {
    let s = run_read_leakage_scenario(DefenseConfig::original(), 601);
    assert!(s.leaked);
    // The non-member recovered the exact private asset.
    assert!(s.recovered.iter().any(|r| r.payload == s.secret));
}

#[test]
fn write_transactions_leak_to_non_members() {
    let s = run_write_leakage_scenario(DefenseConfig::original(), 602);
    assert!(s.leaked);
}

#[test]
fn leakage_requires_no_malicious_node() {
    // Every node in the scenario is honest: the leak is pure protocol
    // behaviour (Use Case 3). The scenario only used honest networks'
    // submit_transaction; reaching here with `leaked` proves the point.
    let s = run_read_leakage_scenario(DefenseConfig::original(), 603);
    assert!(s.leaked);
}

#[test]
fn fixed_chaincode_variant_does_not_leak_via_write() {
    // SaccPrivateFixed returns only the key and takes the value through
    // the transient map; the non-member sees nothing private.
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(604)
        .build();
    let definition = ChaincodeDefinition::new("sacc").with_collection(
        CollectionConfig::membership_of("demo", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")]),
    );
    net.deploy_chaincode(definition, Arc::new(SaccPrivateFixed::new("demo")));
    let secret = b"super-secret".as_slice();
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sacc",
            "set",
            &["k1"],
            &[("value", secret)],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    let recovered = extract_payload_leaks(net.peer("peer0.org3"));
    assert!(recovered.iter().all(|r| r.payload != secret));
    // The members still committed the plaintext value privately.
    assert_eq!(
        net.peer("peer0.org1")
            .world_state()
            .get_private(
                &ChaincodeId::new("sacc"),
                &CollectionName::new("demo"),
                "k1"
            )
            .unwrap()
            .value,
        secret
    );
}

#[test]
fn hashed_rwset_alone_reveals_nothing() {
    // Even in the leaky scenario, the rwset inside the block is hashed:
    // what leaks is specifically the payload. Check that no hashed write
    // carries the plaintext.
    let s = run_write_leakage_scenario(DefenseConfig::original(), 605);
    assert!(s.leaked);
    for rec in &s.recovered {
        // Recovered payloads come only from the payload field; the secret
        // must not be derivable from the rwset (it only holds SHA-256s).
        assert_ne!(rec.payload, sha256(&s.secret).0.to_vec());
    }
}
