//! Parallel signature validation must be an observationally pure
//! optimization: identical validation codes and identical resulting state.

use fabric_pdc::prelude::*;
use fabric_pdc::types::Block;
use std::sync::Arc;

/// Builds a block of `n` independent asset-creation transactions plus a
/// few corrupted ones.
fn build_block(net: &mut FabricNetwork, n: usize) -> Block {
    let mut txs = Vec::new();
    for i in 0..n {
        let mut client = Client::new(
            "Org1MSP",
            Keypair::generate_from_seed(5000 + i as u64),
            DefenseConfig::original(),
        );
        let proposal = client.create_proposal(
            net.channel().clone(),
            ChaincodeId::new("assets"),
            "CreateAsset",
            vec![
                format!("a{i}").into_bytes(),
                b"red".to_vec(),
                b"alice".to_vec(),
                b"1".to_vec(),
            ],
            Default::default(),
        );
        let r1 = net.endorse("peer0.org1", &proposal).unwrap();
        let r2 = net.endorse("peer0.org2", &proposal).unwrap();
        let (mut tx, _) = client.assemble_transaction(&proposal, &[r1, r2]).unwrap();
        // Corrupt every fifth transaction's payload (breaks endorsements).
        if i % 5 == 4 {
            tx.payload.response.payload = b"tampered".to_vec();
        }
        txs.push(tx);
    }
    let peer = net.peer("peer0.org1");
    Block::new(
        peer.block_store().height(),
        peer.block_store().tip_hash(),
        txs,
    )
}

#[test]
fn parallel_and_sequential_validation_agree() {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(990)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    let block = build_block(&mut net, 25);

    let mut sequential = net.peer("peer0.org3").clone();
    let mut parallel = net.peer("peer0.org3").clone();
    parallel.set_parallel_validation(true);

    let mut no_pvt = |_: &TxId| None;
    let seq_outcome = sequential
        .process_block(block.clone(), &mut no_pvt)
        .unwrap();
    let par_outcome = parallel.process_block(block, &mut no_pvt).unwrap();

    assert_eq!(seq_outcome, par_outcome);
    // The corrupted ones failed, the rest passed.
    let valid = seq_outcome
        .validation_codes
        .iter()
        .filter(|c| c.is_valid())
        .count();
    assert_eq!(valid, 20);
    // Tampering broke the client signature (checked first).
    assert!(seq_outcome.validation_codes.iter().any(|c| matches!(
        c,
        TxValidationCode::InvalidClientSignature | TxValidationCode::InvalidEndorserSignature
    )));
    // Identical resulting ledgers.
    assert_eq!(
        sequential.block_store().tip_hash(),
        parallel.block_store().tip_hash()
    );
    assert_eq!(
        sequential.world_state().public_len(),
        parallel.world_state().public_len()
    );
}

#[test]
fn small_blocks_take_the_sequential_path() {
    // Below the parallel threshold, the flag changes nothing (and the code
    // path still works for 1-tx blocks).
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(991)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    let block = build_block(&mut net, 2);
    let mut peer = net.peer("peer0.org3").clone();
    peer.set_parallel_validation(true);
    let mut no_pvt = |_: &TxId| None;
    let outcome = peer.process_block(block, &mut no_pvt).unwrap();
    assert_eq!(outcome.validation_codes.len(), 2);
    assert!(outcome.validation_codes.iter().all(|c| c.is_valid()));
}
