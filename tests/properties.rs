//! Property-based tests over the core data structures and the workflow.

use fabric_pdc::crypto::{sha256, Keypair};
use fabric_pdc::policy::SignaturePolicy;
use fabric_pdc::prelude::*;
use fabric_pdc::types::{KvRead, KvRwSet, KvWrite, Version};
use fabric_pdc::wire::{Decode, Encode};
use proptest::prelude::*;

fn arb_version() -> impl Strategy<Value = Option<Version>> {
    proptest::option::of((0u64..100, 0u64..50).prop_map(|(b, t)| Version::new(b, t)))
}

fn arb_rwset() -> impl Strategy<Value = KvRwSet> {
    let reads = proptest::collection::vec(
        ("[a-z]{1,8}", arb_version()).prop_map(|(key, version)| KvRead { key, version }),
        0..5,
    );
    let writes = proptest::collection::vec(
        (
            "[a-z]{1,8}",
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16)),
            any::<bool>(),
        )
            .prop_map(|(key, value, is_delete)| KvWrite {
                key,
                value: if is_delete { None } else { value },
                is_delete,
            }),
        0..5,
    );
    (reads, writes).prop_map(|(reads, writes)| KvRwSet { reads, writes })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hashing a rwset preserves shape: same lengths, same versions, same
    /// delete flags, and key hashes are the SHA-256 of the keys.
    #[test]
    fn hashed_rwset_preserves_shape(rwset in arb_rwset()) {
        let (hr, hw) = rwset.to_hashed();
        prop_assert_eq!(hr.len(), rwset.reads.len());
        prop_assert_eq!(hw.len(), rwset.writes.len());
        for (h, r) in hr.iter().zip(&rwset.reads) {
            prop_assert_eq!(h.key_hash, sha256(r.key.as_bytes()));
            prop_assert_eq!(h.version, r.version);
        }
        for (h, w) in hw.iter().zip(&rwset.writes) {
            prop_assert_eq!(h.is_delete, w.is_delete);
            prop_assert_eq!(h.value_hash.is_some(), w.value.is_some());
        }
    }

    /// The Table-I classification is stable under hashing: a plaintext
    /// rwset and its hashed form classify identically.
    #[test]
    fn classification_survives_hashing(rwset in arb_rwset()) {
        let pvt = fabric_pdc::types::CollectionPvtRwSet {
            collection: CollectionName::new("c"),
            rwset: rwset.clone(),
        };
        prop_assert_eq!(pvt.to_hashed().kind(), rwset.kind());
    }

    /// Wire roundtrip for rwsets.
    #[test]
    fn rwset_wire_roundtrip(rwset in arb_rwset()) {
        let bytes = rwset.to_wire();
        prop_assert_eq!(KvRwSet::from_wire(&bytes).unwrap(), rwset);
    }

    /// Signatures verify iff key and message match.
    #[test]
    fn signature_soundness(seed_a in 1u64..500, seed_b in 501u64..1000, msg in any::<Vec<u8>>(), other in any::<Vec<u8>>()) {
        let a = Keypair::generate_from_seed(seed_a);
        let b = Keypair::generate_from_seed(seed_b);
        let sig = a.sign(&msg);
        prop_assert!(sig.verify(&a.public_key(), &msg));
        prop_assert!(!sig.verify(&b.public_key(), &msg));
        if msg != other {
            prop_assert!(!sig.verify(&a.public_key(), &other));
        }
    }

    /// OutOf(n) monotonicity: adding endorsers never un-satisfies a policy.
    #[test]
    fn policy_monotonicity(n in 1u32..4, present in proptest::collection::vec(0usize..5, 0..5)) {
        let expr = format!(
            "OutOf({n},'Org0MSP.peer','Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer')"
        );
        let policy = SignaturePolicy::parse(&expr).unwrap();
        let ids: Vec<Identity> = present
            .iter()
            .map(|&i| Identity::new(
                format!("Org{i}MSP"),
                Role::Peer,
                Keypair::generate_from_seed(3000 + i as u64).public_key(),
            ))
            .collect();
        let before = policy.satisfied_by(&ids);
        let mut more = ids.clone();
        more.push(Identity::new(
            "Org0MSP",
            Role::Peer,
            Keypair::generate_from_seed(4242).public_key(),
        ));
        let after = policy.satisfied_by(&more);
        prop_assert!(!before || after, "satisfaction must be monotone");
    }

    /// Policy display/parse roundtrip.
    #[test]
    fn policy_display_roundtrip(n in 1u32..3, orgs in proptest::collection::vec(1usize..9, 3..6)) {
        let principals: Vec<String> = orgs.iter().map(|o| format!("'Org{o}MSP.peer'")).collect();
        let expr = format!("OutOf({n},{})", principals.join(","));
        let parsed = SignaturePolicy::parse(&expr).unwrap();
        let reparsed = SignaturePolicy::parse(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hostile bytes must never panic protocol decoders.
    #[test]
    fn protocol_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        use fabric_pdc::types::{Block, Proposal, Transaction, TxRwSet};
        let _ = Transaction::from_wire(&bytes);
        let _ = Block::from_wire(&bytes);
        let _ = Proposal::from_wire(&bytes);
        let _ = TxRwSet::from_wire(&bytes);
    }

    /// Valid encodings decode back to the same value even after the wire
    /// passes through a copy (no aliasing/state effects).
    #[test]
    fn rwset_double_roundtrip(rwset in arb_rwset()) {
        let bytes = rwset.to_wire();
        let copy = bytes.clone();
        prop_assert_eq!(KvRwSet::from_wire(&copy).unwrap(), rwset);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end determinism: the same seed yields byte-identical chains.
    #[test]
    fn network_is_deterministic(seed in 0u64..50) {
        let run = |seed: u64| {
            let mut net = NetworkBuilder::new("ch1")
                .orgs(&["Org1MSP", "Org2MSP"])
                .seed(seed)
                .build();
            net.deploy_chaincode(ChaincodeDefinition::new("assets"), std::sync::Arc::new(AssetTransfer));
            net.submit_transaction(
                "client0.org1",
                "assets",
                "CreateAsset",
                &["a", "red", "alice", "1"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .unwrap();
            net.peer("peer0.org1").block_store().tip_hash()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
