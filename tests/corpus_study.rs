//! §V-C at reduced scale: generate a corpus on disk, scan it, and verify
//! the headline percentages track the paper's findings.

use fabric_pdc::analyzer::{corpus, scan_corpus, CorpusReport, CorpusSpec};
use std::fs;

#[test]
fn small_corpus_percentages_track_the_paper() {
    let spec = CorpusSpec::small(12345);
    let root = std::env::temp_dir().join(format!("fabric-pdc-corpus-it-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    corpus::materialize(&spec, &root).unwrap();

    let reports = scan_corpus(&root).unwrap();
    let agg = CorpusReport::from_reports(&reports);

    // The small spec preserves the paper's structure approximately; the
    // key claims must hold qualitatively:
    // 1. The overwhelming majority of explicit projects rely on the
    //    chaincode-level policy (paper: 86.51 %).
    assert!(
        agg.pct_chaincode_level() > 75.0,
        "{}",
        agg.pct_chaincode_level()
    );
    // 2. The overwhelming majority have leakage issues (paper: 91.67 %).
    assert!(agg.pct_leaky() > 75.0, "{}", agg.pct_leaky());
    // 3. MAJORITY Endorsement dominates configtx defaults (paper: 116/120).
    assert!(agg.configtx_majority * 2 > agg.configtx_found);
    // 4. PDC usage only appears from 2018 (the feature's release).
    for row in &agg.years {
        if row.year < 2018 {
            assert_eq!(row.pdc, 0, "year {}", row.year);
        }
    }

    let _ = fs::remove_dir_all(&root);
}

/// The full 6392-project corpus — the actual §V-C scale. Ignored by
/// default; run with `cargo test -p fabric-pdc --test corpus_study -- --ignored`.
#[test]
#[ignore = "paper-scale corpus (~25k files); run explicitly"]
fn full_corpus_reproduces_exact_paper_numbers() {
    let spec = CorpusSpec::default();
    let root = std::env::temp_dir().join(format!("fabric-pdc-corpus-full-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    corpus::materialize(&spec, &root).unwrap();
    let reports = scan_corpus(&root).unwrap();
    let agg = CorpusReport::from_reports(&reports);

    assert_eq!(agg.total, 6392);
    assert_eq!(agg.explicit, 252);
    assert_eq!(agg.total_pdc(), 256);
    assert_eq!(agg.chaincode_level_policy, 218);
    assert_eq!(agg.configtx_found, 120);
    assert_eq!(agg.configtx_majority, 116);
    assert_eq!(agg.read_leak, 231);
    assert_eq!(agg.read_and_write_leak, 20);
    assert!((agg.pct_chaincode_level() - 86.51).abs() < 0.01);
    assert!((agg.pct_leaky() - 91.67).abs() < 0.01);

    let _ = fs::remove_dir_all(&root);
}
