//! Zero-copy block fan-out, pinned by a counting global allocator.
//!
//! The network fans each cut block out to every peer. With `Arc`-shared
//! transaction storage that fan-out is a refcount bump — `Block::clone`
//! must perform **zero** heap allocations, which pins per-peer delivery
//! at O(1) deep copies regardless of block size. The deep-clone
//! reconstruction (the pre-sharing cost model kept alive by
//! [`FanoutMode::DeepClone`]) allocates at least once per transaction,
//! and an end-to-end run shows the gap on the live submit→commit path.
//!
//! A final test drives the same workload through both fan-out modes and
//! asserts they are observationally identical: same chain tips, same
//! world-state digests on every peer, same audit-event sequence.

use fabric_pdc::orderer::BatchConfig;
use fabric_pdc::prelude::*;
use fabric_pdc::types::Block;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// System allocator wrapper that counts allocation events and bytes.
/// Deallocations are not tracked: the interesting quantity is how much
/// allocator traffic a code path *causes*, not its live footprint.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes every test in this binary: the counters are process-global,
/// so concurrent tests would bleed allocations into each other's windows.
static SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` and returns `(result, allocation calls, allocated bytes)`.
fn measured<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let result = f();
    (
        result,
        ALLOC_CALLS.load(Ordering::Relaxed) - calls0,
        ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
    )
}

const NS: &str = "guarded";
const COL: &str = "PDC1";

/// 2-org network (plus `extra_peers` additional peers, alternating orgs)
/// with the guarded PDC chaincode deployed and blocks cut at exactly
/// `block_txs` transactions.
fn fanout_network(extra_peers: usize, block_txs: usize, t: Option<Telemetry>) -> FabricNetwork {
    let mut builder = NetworkBuilder::new("zc")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(41)
        .batch(BatchConfig {
            max_message_count: block_txs,
            batch_timeout_ticks: 1_000_000,
        });
    if let Some(t) = t {
        builder = builder.with_telemetry(t);
    }
    let mut net = builder.build();
    let def = ChaincodeDefinition::new(NS)
        .with_endorsement_policy("MAJORITY Endorsement")
        .with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
                .with_member_only_read(false)
                .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
        );
    net.deploy_chaincode(def, std::sync::Arc::new(GuardedPdc::unconstrained(COL)));
    for extra in 0..extra_peers {
        let org = if extra % 2 == 0 { "Org1MSP" } else { "Org2MSP" };
        net.add_peer(org);
    }
    net
}

/// `count` pre-endorsed, pre-assembled distinct-key PDC writes whose
/// private data has been disseminated through the network's gossip layer.
fn prepare_txs(net: &mut FabricNetwork, count: usize) -> Vec<Transaction> {
    (0..count)
        .map(|i| {
            let mut client = Client::new(
                "Org1MSP",
                Keypair::generate_from_seed(8_800_000 + i as u64),
                DefenseConfig::original(),
            );
            let proposal = client.create_proposal(
                net.channel().clone(),
                ChaincodeId::new(NS),
                "write",
                vec![format!("zk{i}").into_bytes(), b"12".to_vec()],
                Default::default(),
            );
            let r1 = net.endorse("peer0.org1", &proposal).expect("endorse org1");
            let r2 = net.endorse("peer0.org2", &proposal).expect("endorse org2");
            client
                .assemble_transaction(&proposal, &[r1, r2])
                .expect("assemble")
                .0
        })
        .collect()
}

/// Submits `txs` and ticks until all peers committed `blocks` more blocks.
fn run_to_commit(net: &mut FabricNetwork, txs: Vec<Transaction>, blocks: usize) {
    let names = net.peer_names();
    let target = net.peer(&names[0]).block_store().height() + blocks as u64;
    for tx in txs {
        net.submit(tx);
    }
    for _ in 0..10_000 {
        net.advance(1);
        if names
            .iter()
            .all(|n| net.peer(n).block_store().height() >= target)
        {
            return;
        }
    }
    panic!("blocks did not commit within the tick budget");
}

/// The core pin: cloning a block is allocation-free (per-peer fan-out is
/// O(1) deep copies, independent of how many transactions it carries),
/// while the deep-clone reconstruction allocates at least once per
/// transaction.
#[test]
fn block_clone_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();
    const TXS: usize = 8;
    let mut net = fanout_network(0, TXS, None);
    let txs = prepare_txs(&mut net, TXS);
    let tip = net.peer("peer0.org1").block_store().tip_hash();
    let height = net.peer("peer0.org1").block_store().height();
    let block = Block::new(height, tip, txs);

    let (shared, shared_calls, shared_bytes) = measured(|| std::hint::black_box(block.clone()));
    assert_eq!(
        (shared_calls, shared_bytes),
        (0, 0),
        "Arc fan-out must be a pure refcount bump"
    );
    assert_eq!(shared, block);

    let (deep, deep_calls, _) = measured(|| {
        std::hint::black_box(Block {
            header: block.header.clone(),
            transactions: block.transactions.to_vec().into(),
            metadata: block.metadata.clone(),
        })
    });
    assert!(
        deep_calls >= TXS as u64,
        "deep-cloning {TXS} transactions must allocate at least once each, measured {deep_calls}"
    );
    assert_eq!(deep, block, "deep clone is observationally identical");
}

/// End-to-end allocator traffic: the same submit→commit workload on
/// identically-seeded 4-peer networks costs strictly more allocator calls
/// under [`FanoutMode::DeepClone`] than under the shared fan-out — by at
/// least one allocation per (transaction × peer), the floor set by the
/// per-peer transaction copies alone.
#[test]
fn shared_fanout_cuts_deliver_path_allocations() {
    let _guard = SERIAL.lock().unwrap();
    const TXS: usize = 16;
    const PEERS: u64 = 4;
    let mut traffic = Vec::new();
    for mode in [FanoutMode::Shared, FanoutMode::DeepClone] {
        let mut net = fanout_network(2, TXS, None);
        net.set_fanout_mode(mode);
        let txs = prepare_txs(&mut net, TXS);
        let ((), calls, bytes) = measured(|| run_to_commit(&mut net, txs, 1));
        traffic.push((calls, bytes));
    }
    let [(shared_calls, shared_bytes), (deep_calls, deep_bytes)] = traffic[..] else {
        unreachable!("two modes measured");
    };
    assert!(
        deep_calls >= shared_calls + PEERS * TXS as u64,
        "deep-clone fan-out must allocate at least once per transaction per peer more than \
         shared fan-out (shared {shared_calls} calls, deep {deep_calls} calls)"
    );
    assert!(
        deep_bytes > shared_bytes,
        "deep-clone fan-out must allocate more bytes (shared {shared_bytes}, deep {deep_bytes})"
    );
}

/// The two fan-out modes are observationally identical: every peer ends
/// at the same height and chain tip with the same world-state digest, and
/// the audit-event sequence is unchanged.
#[test]
fn fanout_modes_converge_identically() {
    let _guard = SERIAL.lock().unwrap();
    const TXS: usize = 6;
    let mut observed = Vec::new();
    for mode in [FanoutMode::Shared, FanoutMode::DeepClone] {
        let telemetry = Telemetry::new();
        let mut net = fanout_network(2, TXS, Some(telemetry.clone()));
        net.set_fanout_mode(mode);
        let txs = prepare_txs(&mut net, TXS);
        run_to_commit(&mut net, txs, 1);
        let names = net.peer_names();
        let per_peer: Vec<_> = names
            .iter()
            .map(|n| {
                let peer = net.peer(n);
                (
                    n.clone(),
                    peer.block_store().height(),
                    peer.block_store().tip_hash(),
                    peer.world_state().digest(),
                )
            })
            .collect();
        let tip = per_peer[0].2;
        for (name, _, peer_tip, _) in &per_peer {
            assert_eq!(*peer_tip, tip, "{name} diverged from the first peer's tip");
        }
        observed.push((per_peer, telemetry.audit().events()));
    }
    assert_eq!(
        observed[0].0, observed[1].0,
        "per-peer heights/tips/digests differ between fan-out modes"
    );
    assert_eq!(
        observed[0].1, observed[1].1,
        "audit-event sequence differs between fan-out modes"
    );
}
