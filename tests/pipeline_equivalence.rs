//! Equivalence of the staged validation pipeline and the pre-pipeline
//! reference validator: for any block — valid, under-endorsed, tampered,
//! duplicated, and SBE-parameter-changing transactions interleaved —
//! `process_block` (parallel on AND off) must produce the same validation
//! codes, the same world-state digest, and the same chain tip as
//! `process_block_reference`.
//!
//! The interesting adversarial case is a transaction that writes a key's
//! state-based-endorsement parameter *earlier in the same block* than a
//! write to that key: the pipeline's stateless pass evaluated the later
//! write against the pre-block parameter and must re-check it
//! sequentially (dirty-key detection), exactly as the reference does by
//! construction.
//!
//! The same contract extends to multi-block streams and the pipelined
//! commit scheduler (`process_blocks_overlapped`), which runs block
//! N+1's stateless pass concurrently with block N's stateful merge: the
//! concatenated outcomes, final digest, chain tip, and audit-event
//! sequence must match the reference loop even when an SBE mutation or
//! an MVCC read hazard straddles the overlap window.

use fabric_pdc::chaincode::samples::SbeDemo;
use fabric_pdc::orderer::BatchConfig;
use fabric_pdc::peer::{BlockCommitOutcome, CommitLane, ShardedScheduler};
use fabric_pdc::prelude::*;
use fabric_pdc::types::{Block, PvtDataPackage, Transaction};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// PDC chaincode namespace (collection members: org1, org2).
const PDC_NS: &str = "guarded";
/// Private data collection name.
const COL: &str = "PDC1";
/// SBE chaincode namespace (public state, key-level policies).
const SBE_NS: &str = "sbe";

const PEERS: [&str; 3] = ["peer0.org1", "peer0.org2", "peer0.org3"];

/// Key-level policies a generated `set_policy` can install. Deliberately
/// includes policies that later writes in the block will fail.
const SBE_POLICIES: [&str; 3] = [
    "OR('Org2MSP.peer')",
    "AND('Org1MSP.peer','Org2MSP.peer')",
    "OR('Org3MSP.peer')",
];

/// One generated transaction in the block under test.
#[derive(Debug, Clone)]
enum TxSpec {
    /// Private write to `bk{key}` endorsed by the given collection-member
    /// peers (subset of {org1, org2}; singletons fail the collection AND).
    PdcWrite { key: u8, endorsers: Vec<usize> },
    /// Private read-modify-write of the seeded `bk0`: its hashed read
    /// carries the pre-stream version, so any earlier write to `bk0` —
    /// in the same block or an earlier block of the stream — makes this
    /// an MVCC read conflict.
    PdcAdd { endorsers: Vec<usize> },
    /// Public write to `sk{key}`; validity depends on the key's SBE
    /// parameter at validation time (possibly written earlier in-block).
    SbePut { key: u8, endorsers: Vec<usize> },
    /// Writes the SBE parameter of `sk{key}` — every later in-block
    /// transaction touching that key must be re-checked against it.
    SbeSetPolicy {
        key: u8,
        policy: usize,
        endorsers: Vec<usize>,
    },
    /// A well-endorsed PDC write whose response payload is corrupted after
    /// assembly (invalid signatures).
    Tampered { key: u8 },
    /// A byte-for-byte copy of an earlier transaction in the block.
    DuplicateOf(usize),
}

/// Non-empty subset of all three peers.
fn arb_endorsers() -> impl Strategy<Value = Vec<usize>> {
    proptest::sample::subsequence(vec![0usize, 1, 2], 1..=3)
}

/// Non-empty subset of the collection members (org1, org2).
fn arb_member_endorsers() -> impl Strategy<Value = Vec<usize>> {
    proptest::sample::subsequence(vec![0usize, 1], 1..=2)
}

fn arb_spec() -> impl Strategy<Value = TxSpec> {
    prop_oneof![
        3 => (0u8..4, arb_member_endorsers())
            .prop_map(|(key, endorsers)| TxSpec::PdcWrite { key, endorsers }),
        2 => arb_member_endorsers().prop_map(|endorsers| TxSpec::PdcAdd { endorsers }),
        3 => (0u8..3, arb_endorsers())
            .prop_map(|(key, endorsers)| TxSpec::SbePut { key, endorsers }),
        2 => (0u8..3, 0usize..SBE_POLICIES.len(), arb_endorsers())
            .prop_map(|(key, policy, endorsers)| TxSpec::SbeSetPolicy { key, policy, endorsers }),
        1 => (0u8..4).prop_map(|key| TxSpec::Tampered { key }),
        1 => (0usize..16).prop_map(TxSpec::DuplicateOf),
    ]
}

/// 3-org network with both chaincodes deployed and one committed SBE
/// parameter (`sk0` pinned to AND(org1, org2)), so generated blocks
/// exercise committed parameters as well as in-block ones.
fn equivalence_network(seed: u64) -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .build();
    let def = ChaincodeDefinition::new(PDC_NS)
        .with_endorsement_policy("MAJORITY Endorsement")
        .with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
                .with_member_only_read(false)
                .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
        );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained(COL)));
    net.deploy_chaincode(ChaincodeDefinition::new(SBE_NS), Arc::new(SbeDemo));
    // Seed bk0 so `PdcAdd` read-modify-writes have a key to read.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            PDC_NS,
            "write",
            &["bk0", "12"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .expect("seed bk0");
    assert!(outcome.validation_code.is_valid(), "seed bk0");
    for (function, args) in [
        ("put", vec!["sk0", "seeded"]),
        (
            "set_policy",
            vec!["sk0", "AND('Org1MSP.peer','Org2MSP.peer')"],
        ),
    ] {
        let outcome = net
            .submit_transaction(
                "client0.org1",
                SBE_NS,
                function,
                &args,
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .expect("seed tx");
        assert!(outcome.validation_code.is_valid(), "seed {function}");
    }
    net
}

/// Endorses one invocation at the given peers and assembles the signed
/// transaction, collecting any private-data package under its tx-id.
fn build_tx(
    net: &mut FabricNetwork,
    ns: &str,
    function: &str,
    args: Vec<Vec<u8>>,
    endorsers: &[usize],
    client_seed: u64,
    pkgs: &mut HashMap<TxId, PvtDataPackage>,
) -> Transaction {
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(7_700_000 + client_seed),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        net.channel().clone(),
        ChaincodeId::new(ns),
        function,
        args,
        Default::default(),
    );
    let mut responses = Vec::with_capacity(endorsers.len());
    let mut pvt = None;
    for &e in endorsers {
        let (resp, pkg) = net.peer(PEERS[e]).endorse(&proposal).expect("endorse");
        pvt = pvt.or(pkg);
        responses.push(resp);
    }
    let (tx, _) = client
        .assemble_transaction(&proposal, &responses)
        .expect("assemble");
    if let Some(pkg) = pvt {
        pkgs.insert(tx.tx_id.clone(), pkg);
    }
    tx
}

/// Builds the pre-chained block stream described by `blocks_specs` on
/// top of the network's current state (block headers do not cover
/// metadata, so the whole stream exists before the first commit), plus
/// the private-data packages its commit needs.
///
/// Every transaction is endorsed against the *pre-stream* committed
/// state — so a `PdcAdd` in a later block carries a read version an
/// earlier block's write invalidates, and a `DuplicateOf` may copy a
/// transaction from an earlier block (caught by the committed-duplicate
/// check once that block lands).
fn build_stream(
    net: &mut FabricNetwork,
    blocks_specs: &[Vec<TxSpec>],
) -> (Vec<Block>, HashMap<TxId, PvtDataPackage>) {
    let total: usize = blocks_specs.iter().map(Vec::len).sum();
    let mut all: Vec<Transaction> = Vec::with_capacity(total);
    let mut pkgs = HashMap::new();
    let store = net.peer("peer0.org2").block_store();
    let first_number = store.height();
    let mut prev = store.tip_hash();
    let mut stream = Vec::with_capacity(blocks_specs.len());
    for (specs, number) in blocks_specs.iter().zip(first_number..) {
        let mut txs: Vec<Transaction> = Vec::with_capacity(specs.len());
        for spec in specs {
            let i = all.len();
            let tx = match spec {
                TxSpec::PdcWrite { key, endorsers } => build_tx(
                    net,
                    PDC_NS,
                    "write",
                    vec![
                        format!("bk{key}").into_bytes(),
                        format!("{}", 100 + i).into_bytes(),
                    ],
                    endorsers,
                    i as u64,
                    &mut pkgs,
                ),
                TxSpec::PdcAdd { endorsers } => build_tx(
                    net,
                    PDC_NS,
                    "add",
                    vec![b"bk0".to_vec(), b"1".to_vec()],
                    endorsers,
                    i as u64,
                    &mut pkgs,
                ),
                TxSpec::SbePut { key, endorsers } => build_tx(
                    net,
                    SBE_NS,
                    "put",
                    vec![
                        format!("sk{key}").into_bytes(),
                        format!("v{i}").into_bytes(),
                    ],
                    endorsers,
                    i as u64,
                    &mut pkgs,
                ),
                TxSpec::SbeSetPolicy {
                    key,
                    policy,
                    endorsers,
                } => build_tx(
                    net,
                    SBE_NS,
                    "set_policy",
                    vec![
                        format!("sk{key}").into_bytes(),
                        SBE_POLICIES[*policy].as_bytes().to_vec(),
                    ],
                    endorsers,
                    i as u64,
                    &mut pkgs,
                ),
                TxSpec::Tampered { key } => {
                    let mut tx = build_tx(
                        net,
                        PDC_NS,
                        "write",
                        vec![
                            format!("bk{key}").into_bytes(),
                            format!("{}", 100 + i).into_bytes(),
                        ],
                        &[0, 1],
                        i as u64,
                        &mut pkgs,
                    );
                    tx.payload.response.payload = b"tampered".to_vec();
                    tx
                }
                TxSpec::DuplicateOf(j) => match all.get(j % total.max(1)) {
                    Some(tx) => tx.clone(),
                    // No earlier transaction to copy: degrade to a valid write.
                    None => build_tx(
                        net,
                        PDC_NS,
                        "write",
                        vec![
                            format!("bk{i}").into_bytes(),
                            format!("{}", 100 + i).into_bytes(),
                        ],
                        &[0, 1],
                        i as u64,
                        &mut pkgs,
                    ),
                },
            };
            all.push(tx.clone());
            txs.push(tx);
        }
        let block = Block::new(number, prev, txs);
        prev = block.hash();
        stream.push(block);
    }
    (stream, pkgs)
}

/// Builds the single block described by `specs` (see [`build_stream`]).
fn build_block(
    net: &mut FabricNetwork,
    specs: &[TxSpec],
) -> (Block, HashMap<TxId, PvtDataPackage>) {
    let (mut stream, pkgs) = build_stream(net, std::slice::from_ref(&specs.to_vec()));
    (stream.pop().expect("one block"), pkgs)
}

/// Runs the block through the reference validator and through the
/// pipeline with parallel validation off and on, asserting identical
/// outcomes, world-state digests, chain tips, and — since audit events
/// are emitted only from the sequential merge stage — identical
/// security-audit event sequences.
fn assert_equivalent(net: &FabricNetwork, block: &Block, pkgs: &HashMap<TxId, PvtDataPackage>) {
    let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(Arc::new);

    let mut reference = net.peer("peer0.org2").clone();
    let ref_outcome = reference
        .process_block_reference(block.clone(), &mut provider)
        .expect("reference: block chains");

    let mut audit_sequences = Vec::with_capacity(2);
    for parallel in [false, true] {
        let mut peer = net.peer("peer0.org2").clone();
        peer.set_parallel_validation(parallel);
        let telemetry = Telemetry::new();
        peer.set_telemetry(telemetry.clone());
        let outcome = peer
            .process_block(block.clone(), &mut provider)
            .expect("pipeline: block chains");
        assert_eq!(
            outcome, ref_outcome,
            "pipeline (parallel={parallel}) outcome diverged from reference"
        );
        assert_eq!(
            peer.world_state().digest(),
            reference.world_state().digest(),
            "pipeline (parallel={parallel}) world state diverged from reference"
        );
        assert_eq!(
            peer.block_store().tip_hash(),
            reference.block_store().tip_hash(),
            "pipeline (parallel={parallel}) chain tip diverged from reference"
        );
        audit_sequences.push(telemetry.audit().events());
    }
    assert_eq!(
        audit_sequences[0], audit_sequences[1],
        "audit-event sequence depends on stage-1 parallelism"
    );
}

/// Commits the whole stream through the reference loop, the per-block
/// pipeline (parallel off and on), and the pipelined overlap scheduler
/// (parallel off and on), asserting identical concatenated outcomes,
/// final world-state digests, chain tips, and audit-event sequences.
fn assert_stream_equivalent(
    net: &FabricNetwork,
    blocks: &[Block],
    pkgs: &HashMap<TxId, PvtDataPackage>,
) -> Vec<BlockCommitOutcome> {
    let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(Arc::new);

    let mut reference = net.peer("peer0.org2").clone();
    let mut ref_outcomes = Vec::with_capacity(blocks.len());
    for b in blocks {
        ref_outcomes.push(
            reference
                .process_block_reference(b.clone(), &mut provider)
                .expect("reference: stream chains"),
        );
    }

    let mut audit_sequences = Vec::with_capacity(4);
    for (overlap, parallel) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut peer = net.peer("peer0.org2").clone();
        peer.set_parallel_validation(parallel);
        let telemetry = Telemetry::new();
        peer.set_telemetry(telemetry.clone());
        let outcomes = if overlap {
            peer.process_blocks_overlapped(blocks.to_vec(), &mut provider)
                .expect("overlap: stream chains")
        } else {
            blocks
                .iter()
                .map(|b| {
                    peer.process_block(b.clone(), &mut provider)
                        .expect("pipeline: stream chains")
                })
                .collect()
        };
        assert_eq!(
            outcomes, ref_outcomes,
            "stream outcomes diverged (overlap={overlap}, parallel={parallel})"
        );
        assert_eq!(
            peer.world_state().digest(),
            reference.world_state().digest(),
            "world state diverged (overlap={overlap}, parallel={parallel})"
        );
        assert_eq!(
            peer.block_store().tip_hash(),
            reference.block_store().tip_hash(),
            "chain tip diverged (overlap={overlap}, parallel={parallel})"
        );
        audit_sequences.push(telemetry.audit().events());
    }
    for (i, seq) in audit_sequences.iter().enumerate().skip(1) {
        assert_eq!(
            *seq, audit_sequences[0],
            "audit-event sequence depends on the scheduler (variant {i})"
        );
    }
    ref_outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed blocks: the pipeline is an observationally pure
    /// optimization of the reference validator.
    #[test]
    fn pipeline_matches_reference_on_random_blocks(
        specs in proptest::collection::vec(arb_spec(), 1..14),
        seed in 0u64..1_000,
    ) {
        let mut net = equivalence_network(10_000 + seed);
        let (block, pkgs) = build_block(&mut net, &specs);
        assert_equivalent(&net, &block, &pkgs);
    }
}

/// Deterministic regression for the dirty-key path: a `set_policy` early
/// in the block changes which endorser sets later writes to the same key
/// need, and all three validators agree on the resulting codes.
#[test]
fn mid_block_policy_change_governs_later_writes() {
    let mut net = equivalence_network(42);
    let specs = [
        // sk1 created under the chaincode MAJORITY policy.
        TxSpec::SbePut {
            key: 1,
            endorsers: vec![0, 1],
        },
        // Mid-block: pin sk1 to OR(org3).
        TxSpec::SbeSetPolicy {
            key: 1,
            policy: 2,
            endorsers: vec![0, 1],
        },
        // org1+org2 satisfied MAJORITY in the stateless pass but fail the
        // in-block parameter — the dirty-key re-check must reject this.
        TxSpec::SbePut {
            key: 1,
            endorsers: vec![0, 1],
        },
        // org3 alone fails MAJORITY statelessly but satisfies OR(org3);
        // key-level parameters replace the chaincode policy for writes.
        TxSpec::SbePut {
            key: 1,
            endorsers: vec![2],
        },
    ];
    let (block, pkgs) = build_block(&mut net, &specs);
    assert_equivalent(&net, &block, &pkgs);

    let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(Arc::new);
    let mut peer = net.peer("peer0.org2").clone();
    peer.set_parallel_validation(true);
    let outcome = peer.process_block(block, &mut provider).expect("chains");
    assert_eq!(
        outcome.validation_codes,
        vec![
            TxValidationCode::Valid,
            TxValidationCode::Valid,
            TxValidationCode::EndorsementPolicyFailure,
            TxValidationCode::Valid,
        ]
    );
}

/// An adversarial block — a mid-block SBE parameter flip followed by a
/// now-under-endorsed write, a tampered plaintext PDC write, and a
/// duplicated transaction — must audit identically under parallel and
/// sequential stage-1 execution (checked by `assert_equivalent`), and the
/// sequence itself is deterministic: events appear in block order with
/// the re-check and plaintext signals exactly once each.
#[test]
fn adversarial_block_audits_deterministically() {
    let mut net = equivalence_network(77);
    let specs = [
        TxSpec::SbePut {
            key: 2,
            endorsers: vec![0, 1],
        },
        // Pin sk2 to OR(org3): the next write is re-checked and fails.
        TxSpec::SbeSetPolicy {
            key: 2,
            policy: 2,
            endorsers: vec![0, 1],
        },
        TxSpec::SbePut {
            key: 2,
            endorsers: vec![0, 1],
        },
        // Well-endorsed PDC write with a corrupted (plaintext, non-empty)
        // response payload: rejected, but the Use Case 3 signal fires.
        TxSpec::Tampered { key: 1 },
        TxSpec::DuplicateOf(0),
    ];
    let (block, pkgs) = build_block(&mut net, &specs);
    assert_equivalent(&net, &block, &pkgs);

    let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(Arc::new);
    let mut peer = net.peer("peer0.org2").clone();
    peer.set_parallel_validation(true);
    let telemetry = Telemetry::new();
    peer.set_telemetry(telemetry.clone());
    peer.process_block(block.clone(), &mut provider)
        .expect("chains");

    let events = telemetry.audit().events();
    let rechecks: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, AuditEvent::SbeReCheck { .. }))
        .collect();
    assert_eq!(
        rechecks.len(),
        1,
        "exactly one dirty-key re-check: {events:?}"
    );
    assert!(
        matches!(
            rechecks[0],
            AuditEvent::SbeReCheck {
                tx_id,
                outcome: TxValidationCode::EndorsementPolicyFailure,
                ..
            } if *tx_id == block.transactions[2].tx_id
        ),
        "re-check audits the under-endorsed write: {:?}",
        rechecks[0]
    );
    let plaintexts: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, AuditEvent::PlaintextPayloadInTx { .. }))
        .collect();
    assert_eq!(
        plaintexts.len(),
        1,
        "exactly one plaintext payload: {events:?}"
    );
    assert!(
        matches!(
            plaintexts[0],
            AuditEvent::PlaintextPayloadInTx { tx_id, .. }
                if *tx_id == block.transactions[3].tx_id
        ),
        "plaintext signal names the tampered transaction: {:?}",
        plaintexts[0]
    );
    // Block order: the tx-2 re-check precedes the tx-3 plaintext signal.
    let recheck_pos = events
        .iter()
        .position(|e| matches!(e, AuditEvent::SbeReCheck { .. }))
        .unwrap();
    let plaintext_pos = events
        .iter()
        .position(|e| matches!(e, AuditEvent::PlaintextPayloadInTx { .. }))
        .unwrap();
    assert!(recheck_pos < plaintext_pos, "events out of block order");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random multi-block streams: the pipelined overlap scheduler is an
    /// observationally pure optimization of the reference loop, even
    /// with duplicates, SBE mutations, and read-modify-writes whose
    /// hazards span the overlap window between consecutive blocks.
    #[test]
    fn overlap_matches_reference_on_random_streams(
        blocks_specs in proptest::collection::vec(
            proptest::collection::vec(arb_spec(), 1..6),
            2..4,
        ),
        seed in 0u64..1_000,
    ) {
        let mut net = equivalence_network(20_000 + seed);
        let (blocks, pkgs) = build_stream(&mut net, &blocks_specs);
        assert_stream_equivalent(&net, &blocks, &pkgs);
    }
}

/// Directed cross-block MVCC hazard: block N writes `bk0`, and block
/// N+1 carries a read-modify-write of `bk0` endorsed against the
/// pre-stream version. The overlap scheduler runs block N+1's stateless
/// pass while block N is still merging, so only the merge-stage MVCC
/// check — against the post-block-N state — can catch the conflict.
#[test]
fn cross_block_mvcc_conflict_straddles_pipeline_boundary() {
    let mut net = equivalence_network(55);
    let blocks_specs = vec![
        vec![TxSpec::PdcWrite {
            key: 0,
            endorsers: vec![0, 1],
        }],
        vec![
            TxSpec::PdcAdd {
                endorsers: vec![0, 1],
            },
            TxSpec::PdcWrite {
                key: 1,
                endorsers: vec![0, 1],
            },
        ],
    ];
    let (blocks, pkgs) = build_stream(&mut net, &blocks_specs);
    let outcomes = assert_stream_equivalent(&net, &blocks, &pkgs);
    assert_eq!(outcomes[0].validation_codes, vec![TxValidationCode::Valid]);
    assert_eq!(
        outcomes[1].validation_codes,
        vec![TxValidationCode::MvccReadConflict, TxValidationCode::Valid],
        "the stale read-modify-write conflicts; the fresh-key write lands"
    );
}

/// Directed in-block MVCC hazard for completeness: the write and the
/// stale read-modify-write share one block, so the conflict arises from
/// the merge stage's own in-block version bump.
#[test]
fn in_block_mvcc_conflict_matches_reference() {
    let mut net = equivalence_network(56);
    let blocks_specs = vec![vec![
        TxSpec::PdcWrite {
            key: 0,
            endorsers: vec![0, 1],
        },
        TxSpec::PdcAdd {
            endorsers: vec![0, 1],
        },
    ]];
    let (blocks, pkgs) = build_stream(&mut net, &blocks_specs);
    let outcomes = assert_stream_equivalent(&net, &blocks, &pkgs);
    assert_eq!(
        outcomes[0].validation_codes,
        vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict]
    );
}

/// Directed cross-block SBE mutation: block N pins `sk1` to OR(org3),
/// so a block-N+1 write endorsed by org1+org2 — statelessly fine under
/// the chaincode MAJORITY policy, and staged by the overlap scheduler
/// before block N commits — must fail the merge-stage policy check
/// against the freshly committed parameter, while an org3 endorsement
/// passes it.
#[test]
fn cross_block_sbe_mutation_governs_next_block() {
    let mut net = equivalence_network(66);
    let blocks_specs = vec![
        vec![
            TxSpec::SbePut {
                key: 1,
                endorsers: vec![0, 1],
            },
            TxSpec::SbeSetPolicy {
                key: 1,
                policy: 2,
                endorsers: vec![0, 1],
            },
        ],
        vec![
            TxSpec::SbePut {
                key: 1,
                endorsers: vec![0, 1],
            },
            TxSpec::SbePut {
                key: 1,
                endorsers: vec![2],
            },
        ],
    ];
    let (blocks, pkgs) = build_stream(&mut net, &blocks_specs);
    let outcomes = assert_stream_equivalent(&net, &blocks, &pkgs);
    assert_eq!(
        outcomes[0].validation_codes,
        vec![TxValidationCode::Valid, TxValidationCode::Valid]
    );
    assert_eq!(
        outcomes[1].validation_codes,
        vec![
            TxValidationCode::EndorsementPolicyFailure,
            TxValidationCode::Valid,
        ],
        "the committed parameter from the previous block governs"
    );
}

/// Cross-block duplicate: a byte-for-byte copy of a block-N transaction
/// in block N+1 is caught by the committed-duplicate check, which in
/// the overlap scheduler runs at merge time against the live block
/// store (after block N landed), never in the staged pass.
#[test]
fn cross_block_duplicate_is_rejected_as_committed() {
    let mut net = equivalence_network(67);
    let blocks_specs = vec![
        vec![TxSpec::PdcWrite {
            key: 2,
            endorsers: vec![0, 1],
        }],
        // DuplicateOf indexes the global transaction list: 0 is the
        // block-0 write.
        vec![
            TxSpec::DuplicateOf(0),
            TxSpec::PdcWrite {
                key: 3,
                endorsers: vec![0, 1],
            },
        ],
    ];
    let (blocks, pkgs) = build_stream(&mut net, &blocks_specs);
    let outcomes = assert_stream_equivalent(&net, &blocks, &pkgs);
    assert_eq!(outcomes[0].validation_codes, vec![TxValidationCode::Valid]);
    assert_eq!(
        outcomes[1].validation_codes,
        vec![TxValidationCode::DuplicateTxId, TxValidationCode::Valid]
    );
}

/// Two independent channels committed on sharded lanes produce exactly
/// the outcomes, digests, and tips of committing each channel's stream
/// by itself.
#[test]
fn sharded_lanes_match_per_channel_commits() {
    let mut net_a = equivalence_network(88);
    let mut net_b = equivalence_network(89);
    let specs = vec![
        vec![
            TxSpec::PdcWrite {
                key: 1,
                endorsers: vec![0, 1],
            },
            TxSpec::SbePut {
                key: 1,
                endorsers: vec![0, 1],
            },
        ],
        vec![TxSpec::PdcAdd {
            endorsers: vec![0, 1],
        }],
    ];
    let (blocks_a, pkgs_a) = build_stream(&mut net_a, &specs);
    let (blocks_b, pkgs_b) = build_stream(&mut net_b, &specs);

    // Per-channel baselines.
    let expected_a = assert_stream_equivalent(&net_a, &blocks_a, &pkgs_a);
    let expected_b = assert_stream_equivalent(&net_b, &blocks_b, &pkgs_b);
    let mut base_a = net_a.peer("peer0.org2").clone();
    let mut base_b = net_b.peer("peer0.org2").clone();
    let mut provider_a = |tx_id: &TxId| pkgs_a.get(tx_id).cloned().map(Arc::new);
    let mut provider_b = |tx_id: &TxId| pkgs_b.get(tx_id).cloned().map(Arc::new);
    base_a
        .process_blocks_overlapped(blocks_a.clone(), &mut provider_a)
        .expect("channel a chains");
    base_b
        .process_blocks_overlapped(blocks_b.clone(), &mut provider_b)
        .expect("channel b chains");

    // Sharded commit of both channels.
    let mut lane_a = net_a.peer("peer0.org2").clone();
    let mut lane_b = net_b.peer("peer0.org2").clone();
    let scheduler = ShardedScheduler::new(vec![
        CommitLane::new(&mut lane_a, blocks_a, |tx_id| {
            pkgs_a.get(tx_id).cloned().map(Arc::new)
        }),
        CommitLane::new(&mut lane_b, blocks_b, |tx_id| {
            pkgs_b.get(tx_id).cloned().map(Arc::new)
        }),
    ]);
    let results = scheduler.commit();
    assert_eq!(results.len(), 2);
    let outcomes_a = results[0].as_ref().expect("lane a commits");
    let outcomes_b = results[1].as_ref().expect("lane b commits");
    assert_eq!(*outcomes_a, expected_a);
    assert_eq!(*outcomes_b, expected_b);
    assert_eq!(lane_a.world_state().digest(), base_a.world_state().digest());
    assert_eq!(lane_b.world_state().digest(), base_b.world_state().digest());
    assert_eq!(
        lane_a.block_store().tip_hash(),
        base_a.block_store().tip_hash()
    );
    assert_eq!(
        lane_b.block_store().tip_hash(),
        base_b.block_store().tip_hash()
    );
}

/// A stream whose third block does not chain: the overlap scheduler
/// commits the blocks before it, reports the error, and leaves the
/// failing block (and everything after) uncommitted.
#[test]
fn overlap_stops_at_first_non_chaining_block() {
    let mut net = equivalence_network(91);
    let specs = vec![
        vec![TxSpec::PdcWrite {
            key: 1,
            endorsers: vec![0, 1],
        }],
        vec![TxSpec::PdcWrite {
            key: 2,
            endorsers: vec![0, 1],
        }],
        vec![TxSpec::PdcWrite {
            key: 3,
            endorsers: vec![0, 1],
        }],
    ];
    let (mut blocks, pkgs) = build_stream(&mut net, &specs);
    let broken = &blocks[2];
    blocks[2] = Block::new(
        broken.header.number,
        sha256(b"bogus previous hash"),
        broken.transactions.clone(),
    );

    let mut peer = net.peer("peer0.org2").clone();
    let start_height = peer.block_store().height();
    let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(Arc::new);
    let err = peer.process_blocks_overlapped(blocks.clone(), &mut provider);
    assert!(err.is_err(), "broken chain must be rejected");
    assert_eq!(
        peer.block_store().height(),
        start_height + 2,
        "the two chaining blocks commit before the break is detected"
    );
    assert_eq!(peer.block_store().tip_hash(), blocks[1].hash());
}

/// The per-block stage histograms are parallelism- and scheduler-
/// invariant: every block contributes exactly one stateless and one
/// stateful observation whether the stages run interleaved
/// (`process_block`) or overlapped across threads
/// (`process_blocks_overlapped`).
#[test]
fn stage_histograms_count_once_per_block_regardless_of_overlap() {
    let mut net = equivalence_network(92);
    let specs = vec![
        vec![TxSpec::PdcWrite {
            key: 1,
            endorsers: vec![0, 1],
        }],
        vec![TxSpec::SbePut {
            key: 1,
            endorsers: vec![0, 1],
        }],
        vec![TxSpec::PdcWrite {
            key: 2,
            endorsers: vec![0, 1],
        }],
    ];
    let (blocks, pkgs) = build_stream(&mut net, &specs);
    for (overlap, parallel) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut peer = net.peer("peer0.org2").clone();
        peer.set_parallel_validation(parallel);
        let telemetry = Telemetry::new();
        peer.set_telemetry(telemetry.clone());
        let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(Arc::new);
        if overlap {
            peer.process_blocks_overlapped(blocks.clone(), &mut provider)
                .expect("stream chains");
        } else {
            for b in &blocks {
                peer.process_block(b.clone(), &mut provider)
                    .expect("block chains");
            }
        }
        for stage in ["stateless", "stateful"] {
            let count = telemetry
                .metrics()
                .find_histogram("fabric_commit_stage_seconds", &[("stage", stage)])
                .map(|h| h.count())
                .unwrap_or(0);
            assert_eq!(
                count,
                blocks.len() as u64,
                "{stage} must record once per block (overlap={overlap}, parallel={parallel})"
            );
        }
    }
}

/// Commits `blocks` on a fresh clone of `peer0.org2` under one scheduler
/// variant with a monitor watching the peer's telemetry, then drives
/// `ticks` post-commit monitor ticks (the first drains every audit event;
/// the quiet remainder ages the detector windows out so firing alerts
/// resolve). Returns the full alert-transition log.
fn monitored_commit_transitions(
    net: &FabricNetwork,
    blocks: &[Block],
    pkgs: &HashMap<TxId, PvtDataPackage>,
    overlap: bool,
    parallel: bool,
    ticks: u32,
) -> Vec<AlertTransition> {
    let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(Arc::new);
    let mut peer = net.peer("peer0.org2").clone();
    peer.set_parallel_validation(parallel);
    let telemetry = Telemetry::new();
    peer.set_telemetry(telemetry.clone());
    let monitor = Monitor::with_config(
        &telemetry,
        MonitorConfig {
            resolve_ticks: 4,
            ..MonitorConfig::default()
        },
    );
    if overlap {
        peer.process_blocks_overlapped(blocks.to_vec(), &mut provider)
            .expect("overlap: stream chains");
    } else {
        for b in blocks {
            peer.process_block(b.clone(), &mut provider)
                .expect("pipeline: stream chains");
        }
    }
    for _ in 0..ticks {
        monitor.observe_tick(&[]);
    }
    monitor.transitions()
}

/// Directed alert lifecycle: a tampered plaintext PDC write fires the
/// Use Case 3 alert, and once the burst ages out of the detector window
/// the alert resolves — with a transition log that is byte-identical
/// under every scheduler variant.
#[test]
fn tampered_stream_alert_fires_and_resolves_identically() {
    use fabric_pdc::monitor::UC3_RULE;

    let mut net = equivalence_network(93);
    let blocks_specs = vec![
        vec![
            TxSpec::Tampered { key: 1 },
            TxSpec::PdcWrite {
                key: 2,
                endorsers: vec![0, 1],
            },
        ],
        vec![TxSpec::SbePut {
            key: 0,
            endorsers: vec![0, 1],
        }],
    ];
    let (blocks, pkgs) = build_stream(&mut net, &blocks_specs);

    let mut logs = Vec::with_capacity(4);
    for (overlap, parallel) in [(false, false), (false, true), (true, false), (true, true)] {
        logs.push(monitored_commit_transitions(
            &net, &blocks, &pkgs, overlap, parallel, 80,
        ));
    }
    for (i, log) in logs.iter().enumerate().skip(1) {
        assert_eq!(
            *log, logs[0],
            "alert transition log depends on the scheduler (variant {i})"
        );
    }
    let phases: Vec<AlertPhase> = logs[0]
        .iter()
        .filter(|t| t.rule == UC3_RULE)
        .map(|t| t.to)
        .collect();
    assert_eq!(
        phases,
        vec![AlertPhase::Firing, AlertPhase::Resolved],
        "the plaintext-payload alert must run the full lifecycle: {:?}",
        logs[0]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Alert determinism: the monitor's full transition log — pending,
    /// firing, resolved — is a pure function of the committed stream.
    /// Random multi-block streams must yield byte-identical logs under
    /// per-block and overlapped scheduling with parallel stage-1
    /// execution on and off.
    #[test]
    fn alert_log_is_deterministic_across_schedulers(
        blocks_specs in proptest::collection::vec(
            proptest::collection::vec(arb_spec(), 1..6),
            2..4,
        ),
        seed in 0u64..1_000,
    ) {
        let mut net = equivalence_network(30_000 + seed);
        let (blocks, pkgs) = build_stream(&mut net, &blocks_specs);
        let mut logs = Vec::with_capacity(4);
        for (overlap, parallel) in [(false, false), (false, true), (true, false), (true, true)] {
            logs.push(monitored_commit_transitions(
                &net, &blocks, &pkgs, overlap, parallel, 80,
            ));
        }
        for (i, log) in logs.iter().enumerate().skip(1) {
            prop_assert_eq!(
                log,
                &logs[0],
                "alert transition log depends on the scheduler (variant {})",
                i
            );
        }
    }
}

/// Endorses, assembles, and submits one spec'd transaction through the
/// *live* network: private data disseminates through the gossip layer,
/// and the ordering service cuts the block. `all` records every
/// assembled transaction so a later [`TxSpec::DuplicateOf`] can resubmit
/// one byte-for-byte.
fn submit_live(net: &mut FabricNetwork, spec: &TxSpec, i: u64, all: &mut Vec<Transaction>) {
    let (ns, function, args, endorsers): (&str, &str, Vec<Vec<u8>>, Vec<usize>) = match spec {
        TxSpec::PdcWrite { key, endorsers } => (
            PDC_NS,
            "write",
            vec![
                format!("bk{key}").into_bytes(),
                format!("{}", 100 + i).into_bytes(),
            ],
            endorsers.clone(),
        ),
        TxSpec::PdcAdd { endorsers } => (
            PDC_NS,
            "add",
            vec![b"bk0".to_vec(), b"1".to_vec()],
            endorsers.clone(),
        ),
        TxSpec::SbePut { key, endorsers } => (
            SBE_NS,
            "put",
            vec![
                format!("sk{key}").into_bytes(),
                format!("v{i}").into_bytes(),
            ],
            endorsers.clone(),
        ),
        TxSpec::SbeSetPolicy {
            key,
            policy,
            endorsers,
        } => (
            SBE_NS,
            "set_policy",
            vec![
                format!("sk{key}").into_bytes(),
                SBE_POLICIES[*policy].as_bytes().to_vec(),
            ],
            endorsers.clone(),
        ),
        TxSpec::Tampered { key } => (
            PDC_NS,
            "write",
            vec![
                format!("bk{key}").into_bytes(),
                format!("{}", 100 + i).into_bytes(),
            ],
            vec![0, 1],
        ),
        TxSpec::DuplicateOf(j) => {
            if let Some(tx) = all.get(*j % all.len().max(1)).cloned() {
                net.submit(tx.clone());
                all.push(tx);
                return;
            }
            // No earlier transaction to copy: degrade to a valid write.
            (
                PDC_NS,
                "write",
                vec![
                    format!("bk{i}").into_bytes(),
                    format!("{}", 100 + i).into_bytes(),
                ],
                vec![0, 1],
            )
        }
    };
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(7_900_000 + i),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        net.channel().clone(),
        ChaincodeId::new(ns),
        function,
        args,
        Default::default(),
    );
    let responses: Vec<_> = endorsers
        .iter()
        .map(|&e| net.endorse(PEERS[e], &proposal).expect("live endorse"))
        .collect();
    let (mut tx, _) = client
        .assemble_transaction(&proposal, &responses)
        .expect("assemble");
    if matches!(spec, TxSpec::Tampered { .. }) {
        tx.payload.response.payload = b"tampered".to_vec();
    }
    net.submit(tx.clone());
    all.push(tx);
}

/// One peer's end state after a live run: name, chain height, chain
/// tip, world-state digest.
type PeerEndState = (String, u64, Hash256, Hash256);

/// Drives a randomized stream through the **full** network under the
/// given fan-out mode — endorse, gossip dissemination, Raft ordering,
/// block fan-out to five peers (two of which never endorse anything),
/// validation, commit, transient-store purge — and returns every peer's
/// end state plus the network-wide audit-event sequence.
fn live_fanout_run(
    seed: u64,
    mode: FanoutMode,
    blocks_specs: &[Vec<TxSpec>],
) -> (Vec<PeerEndState>, Vec<AuditEvent>) {
    let telemetry = Telemetry::new();
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .batch(BatchConfig {
            max_message_count: 64,
            batch_timeout_ticks: 2,
        })
        .with_telemetry(telemetry.clone())
        .build();
    net.set_fanout_mode(mode);
    let def = ChaincodeDefinition::new(PDC_NS)
        .with_endorsement_policy("MAJORITY Endorsement")
        .with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
                .with_member_only_read(false)
                .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
        );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained(COL)));
    net.deploy_chaincode(ChaincodeDefinition::new(SBE_NS), Arc::new(SbeDemo));
    net.add_peer("Org1MSP");
    net.add_peer("Org2MSP");
    // Seed bk0 and sk0 exactly as `equivalence_network` does, so the
    // generated specs exercise committed state as well as in-block state.
    for (ns, function, args) in [
        (PDC_NS, "write", vec!["bk0", "12"]),
        (SBE_NS, "put", vec!["sk0", "seeded"]),
        (
            SBE_NS,
            "set_policy",
            vec!["sk0", "AND('Org1MSP.peer','Org2MSP.peer')"],
        ),
    ] {
        let outcome = net
            .submit_transaction(
                "client0.org1",
                ns,
                function,
                &args,
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .expect("seed tx");
        assert!(outcome.validation_code.is_valid(), "seed {function}");
    }
    let names = net.peer_names();
    let start = net.peer(&names[0]).block_store().height();
    let mut all = Vec::new();
    let mut i = 0u64;
    for specs in blocks_specs {
        for spec in specs {
            submit_live(&mut net, spec, i, &mut all);
            i += 1;
        }
        // A fixed tick budget per block (not commit-polling) keeps the
        // advance sequence — and so the audit timeline — identical
        // across fan-out modes.
        net.advance(24);
    }
    net.advance(50);
    let expected = start + blocks_specs.len() as u64;
    let per_peer: Vec<_> = names
        .iter()
        .map(|n| {
            let peer = net.peer(n);
            (
                n.clone(),
                peer.block_store().height(),
                peer.block_store().tip_hash(),
                peer.world_state().digest(),
            )
        })
        .collect();
    for (name, height, _, _) in &per_peer {
        assert_eq!(*height, expected, "{name} did not commit every block");
    }
    (per_peer, telemetry.audit().events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Zero-copy fan-out equivalence: the same randomized stream driven
    /// through two identically-seeded live networks — one sharing each
    /// block's `Arc` transaction storage across peers, one handing every
    /// peer a deep copy — must leave every peer at the same height and
    /// chain tip with the same world-state digest, and must produce the
    /// same audit-event sequence.
    #[test]
    fn fanout_modes_agree_on_random_live_streams(
        blocks_specs in proptest::collection::vec(
            proptest::collection::vec(arb_spec(), 1..5),
            1..3,
        ),
        seed in 0u64..1_000,
    ) {
        let shared = live_fanout_run(40_000 + seed, FanoutMode::Shared, &blocks_specs);
        let deep = live_fanout_run(40_000 + seed, FanoutMode::DeepClone, &blocks_specs);
        prop_assert_eq!(
            shared.0, deep.0,
            "per-peer heights/tips/digests diverge across fan-out modes"
        );
        prop_assert_eq!(
            shared.1, deep.1,
            "audit-event order diverges across fan-out modes"
        );
    }
}
