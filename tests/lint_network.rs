//! Self-check: the linter over the repo's own example deployments.
//!
//! The `secured_trade` example (examples/secured_trade.rs) is this
//! repo's showcase of a *defended* PDC deployment — its collection pins
//! an `EndorsementPolicy` to the seller and keeps private data out of
//! response payloads. Linting that exact definition must produce no
//! error-severity findings; stripping its defenses must re-introduce
//! them.

use fabric_pdc::lint;
use fabric_pdc::lint::{LintSubject, Severity};
use fabric_pdc::prelude::*;

fn channel_orgs() -> Vec<OrgId> {
    vec![
        OrgId::new("Org1MSP"),
        OrgId::new("Org2MSP"),
        OrgId::new("Org3MSP"),
    ]
}

/// The exact definition `examples/secured_trade.rs` deploys.
fn secured_trade_definition() -> ChaincodeDefinition {
    ChaincodeDefinition::new("trade")
        .with_endorsement_policy("ANY Endorsement")
        .with_collection(
            CollectionConfig::membership_of("sellerCollection", &[OrgId::new("Org1MSP")])
                .with_endorsement_policy("OR('Org1MSP.peer')"),
        )
}

#[test]
fn secured_trade_network_passes_the_linter() {
    // Build the example's live network and lint what is actually
    // deployed on the channel, not a hand-copied definition.
    let mut net = NetworkBuilder::new("trade-channel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(4)
        .build();
    net.deploy_chaincode(
        secured_trade_definition(),
        std::sync::Arc::new(SecuredTrade::new("sellerCollection")),
    );
    let telemetry_attached = net.telemetry().is_some();
    let subjects: Vec<LintSubject> = net
        .deployed_definitions()
        .into_iter()
        .map(|d| {
            LintSubject::from_definition(d, net.orgs()).with_telemetry_attached(telemetry_attached)
        })
        .collect();
    assert_eq!(subjects.len(), 1);
    assert_eq!(subjects[0].channel_orgs, channel_orgs());
    let findings = lint::lint_subjects(&subjects);
    assert!(
        findings.iter().all(|f| f.severity < Severity::Error),
        "the defended example must not produce errors: {findings:#?}"
    );
    // In particular, the attack preconditions are absent.
    for rule in ["PDC006", "PDC009"] {
        assert!(
            findings.iter().all(|f| f.rule_id != rule),
            "{rule} fired on the defended example"
        );
    }
    // This network was built without a collector, which the linter
    // surfaces as the (warning-severity) observability gap.
    assert!(
        findings.iter().any(|f| f.rule_id == "PDC010"),
        "PDC010 must flag the collector-less network: {findings:#?}"
    );
}

#[test]
fn attaching_a_collector_silences_pdc010() {
    let mut net = NetworkBuilder::new("trade-channel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(4)
        .with_telemetry(Telemetry::new())
        .build();
    net.deploy_chaincode(
        secured_trade_definition(),
        std::sync::Arc::new(SecuredTrade::new("sellerCollection")),
    );
    let telemetry_attached = net.telemetry().is_some();
    assert!(telemetry_attached);
    let subjects: Vec<LintSubject> = net
        .deployed_definitions()
        .into_iter()
        .map(|d| {
            LintSubject::from_definition(d, net.orgs()).with_telemetry_attached(telemetry_attached)
        })
        .collect();
    let findings = lint::lint_subjects(&subjects);
    assert!(
        findings.iter().all(|f| f.rule_id != "PDC010"),
        "PDC010 fired despite an attached collector: {findings:#?}"
    );
}

#[test]
fn flight_recorder_presence_drives_pdc011() {
    for (recorder, expect_finding) in [(false, true), (true, false)] {
        let telemetry = if recorder {
            Telemetry::with_flight_recorder(256)
        } else {
            Telemetry::new()
        };
        let mut net = NetworkBuilder::new("trade-channel")
            .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
            .seed(4)
            .with_telemetry(telemetry)
            .build();
        net.deploy_chaincode(
            secured_trade_definition(),
            std::sync::Arc::new(SecuredTrade::new("sellerCollection")),
        );
        let has_recorder = net
            .telemetry()
            .is_some_and(|t| t.flight_recorder().is_some());
        assert_eq!(has_recorder, recorder);
        let subjects: Vec<LintSubject> = net
            .deployed_definitions()
            .into_iter()
            .map(|d| {
                LintSubject::from_definition(d, net.orgs())
                    .with_telemetry_attached(true)
                    .with_flight_recorder(has_recorder)
            })
            .collect();
        let findings = lint::lint_subjects(&subjects);
        assert_eq!(
            findings.iter().any(|f| f.rule_id == "PDC011"),
            expect_finding,
            "recorder={recorder}: {findings:#?}"
        );
        if expect_finding {
            let f = findings.iter().find(|f| f.rule_id == "PDC011").unwrap();
            assert_eq!(f.severity, Severity::Note);
        }
    }
}

#[test]
fn monitor_presence_drives_pdc020() {
    use fabric_pdc::monitor::Monitor;
    for (monitored, expect_finding) in [(false, true), (true, false)] {
        let telemetry = Telemetry::new();
        let mut builder = NetworkBuilder::new("trade-channel")
            .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
            .seed(4)
            .with_telemetry(telemetry.clone());
        if monitored {
            builder = builder.with_monitor(Monitor::new(&telemetry));
        }
        let mut net = builder.build();
        net.deploy_chaincode(
            secured_trade_definition(),
            std::sync::Arc::new(SecuredTrade::new("sellerCollection")),
        );
        assert_eq!(net.monitor().is_some(), monitored);
        let subjects: Vec<LintSubject> = net
            .deployed_definitions()
            .into_iter()
            .map(|d| {
                LintSubject::from_definition(d, net.orgs())
                    .with_telemetry_attached(net.telemetry().is_some())
                    .with_monitor_attached(net.monitor().is_some())
            })
            .collect();
        let findings = lint::lint_subjects(&subjects);
        assert_eq!(
            findings.iter().any(|f| f.rule_id == "PDC020"),
            expect_finding,
            "monitored={monitored}: {findings:#?}"
        );
        if expect_finding {
            let f = findings.iter().find(|f| f.rule_id == "PDC020").unwrap();
            assert_eq!(f.severity, Severity::Note);
        }
    }
}

#[test]
fn flow_analysis_state_drives_pdc018() {
    // Tri-state, mirroring PDC010/PDC011: unknown stays silent, a known
    // gap fires the note, a completed analysis silences it.
    for (flow_analyzed, expect_finding) in [(None, false), (Some(false), true), (Some(true), false)]
    {
        let definition = secured_trade_definition();
        let mut subject = LintSubject::from_definition(&definition, &channel_orgs());
        if let Some(analyzed) = flow_analyzed {
            subject = subject.with_flow_analyzed(analyzed);
        }
        let findings = lint::lint_subject(&subject);
        assert_eq!(
            findings.iter().any(|f| f.rule_id == "PDC018"),
            expect_finding,
            "flow_analyzed={flow_analyzed:?}: {findings:#?}"
        );
        if expect_finding {
            let f = findings.iter().find(|f| f.rule_id == "PDC018").unwrap();
            assert_eq!(f.severity, Severity::Note);
            assert!(f.message.contains("--flow"), "{}", f.message);
        }
    }
}

#[test]
fn flow_analyzing_the_deployed_sample_justifies_the_tri_state_true() {
    // The honest way to set `flow_analyzed: true` on a subject: actually
    // run the flow analyzer over the deployed chaincode. secured_trade is
    // in the built-in registry and must come back clean.
    let target = fabric_pdc::flow::sample_registry()
        .into_iter()
        .find(|t| t.name == "secured_trade")
        .expect("secured_trade registered");
    let flow_findings = fabric_pdc::flow::analyze_target(&target);
    assert!(flow_findings.is_empty(), "{flow_findings:#?}");

    let subject = LintSubject::from_definition(&secured_trade_definition(), &channel_orgs())
        .with_flow_analyzed(flow_findings.is_empty());
    let findings = lint::lint_subject(&subject);
    assert!(
        findings.iter().all(|f| f.rule_id != "PDC018"),
        "{findings:#?}"
    );
}

#[test]
fn stripping_the_collection_policy_reintroduces_use_case_errors() {
    // The same deployment without the collection-level policy: PDC writes
    // fall back to "ANY Endorsement", which any of the three orgs — all
    // non-members but the seller — can satisfy alone (Use Cases 1/2).
    let weakened = ChaincodeDefinition::new("trade")
        .with_endorsement_policy("ANY Endorsement")
        .with_collection(CollectionConfig::membership_of(
            "sellerCollection",
            &[OrgId::new("Org1MSP")],
        ));
    let subject = LintSubject::from_definition(&weakened, &channel_orgs());
    let findings = lint::lint_subject(&subject);
    let fired: Vec<&str> = findings.iter().map(|f| f.rule_id).collect();
    assert!(fired.contains(&"PDC001"), "{fired:?}");
    assert!(fired.contains(&"PDC006"), "{fired:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.rule_id == "PDC006" && f.severity == Severity::Error),
        "{findings:#?}"
    );
}

#[test]
fn probing_secured_trade_finds_no_payload_leak() {
    // Dynamic check of the same property the example demonstrates: the
    // appraisal never enters a response payload. `verify` answers
    // MATCH/MISMATCH and `offer` returns only the asset key.
    let definition = secured_trade_definition();
    let leaks = lint::probe::probe_leaks(
        &SecuredTrade::new("sellerCollection"),
        &definition,
        "network:trade",
        &[
            lint::probe::ProbeSpec::write("offer"),
            lint::probe::ProbeSpec::read("verify"),
        ],
    );
    assert!(leaks.is_empty(), "unexpected payload leaks: {leaks:?}");
}

#[test]
fn probing_the_vulnerable_sample_feeds_pdc009() {
    // End-to-end: probe the paper's Listing 1/2 chaincode, feed the
    // observed leaks into a subject, and the linter reports Use Case 3.
    let definition = ChaincodeDefinition::new("sacc").with_collection(
        CollectionConfig::membership_of("demo", &[OrgId::new("Org1MSP")]),
    );
    let mut subject = LintSubject::from_definition(&definition, &channel_orgs());
    subject.leaks = lint::probe::probe_leaks(
        &SaccPrivate::default(),
        &definition,
        &subject.uri,
        &lint::probe::sacc_probes(),
    );
    let findings = lint::lint_subject(&subject);
    assert_eq!(
        findings.iter().filter(|f| f.rule_id == "PDC009").count(),
        2,
        "{findings:#?}"
    );
}
