//! Cross-crate invariants of the three-phase workflow: all peers converge
//! to identical chains and states, under load and under gossip faults.

use fabric_pdc::prelude::*;
use fabric_pdc::types::Version;
use std::sync::Arc;

fn pdc_network(seed: u64) -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP", "Org4MSP"])
        .seed(seed)
        .build();
    let def = ChaincodeDefinition::new("guarded")
        // With 4 orgs, MAJORITY would need 3 endorsers; the PDC flows here
        // endorse at the two members, so use an explicit 2-of-4 policy.
        .with_endorsement_policy(
            "OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer')",
        )
        .with_collection(
            CollectionConfig::membership_of(
                "PDC1",
                &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
            )
            .with_member_only_read(false),
        );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained("PDC1")));
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    net
}

#[test]
fn peers_converge_under_mixed_load() {
    let mut net = pdc_network(800);
    // A mix of public and private transactions.
    for i in 0..10 {
        let key = format!("asset{i}");
        net.submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &[&key, "red", "alice", "10"],
            &[],
            &["peer0.org1", "peer0.org2", "peer0.org3"],
        )
        .unwrap();
        let pkey = format!("p{i}");
        net.submit_transaction(
            "client0.org2",
            "guarded",
            "write",
            &[&pkey, &i.to_string()],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    }
    // Identical chains at every peer.
    let names = net.peer_names();
    let reference = net.peer(&names[0]).block_store();
    let ref_height = reference.height();
    let ref_tip = reference.tip_hash();
    assert!(ref_height > 0);
    for name in &names {
        let store = net.peer(name).block_store();
        assert!(store.verify_chain(), "{name}");
        assert_eq!(store.height(), ref_height, "{name}");
        assert_eq!(store.tip_hash(), ref_tip, "{name}");
    }
    // Identical public state; private state only at members.
    let ns = ChaincodeId::new("guarded");
    let col = CollectionName::new("PDC1");
    for i in 0..10 {
        let pkey = format!("p{i}");
        let v1 = net
            .peer("peer0.org1")
            .world_state()
            .get_private(&ns, &col, &pkey)
            .map(|v| v.value.clone());
        let v2 = net
            .peer("peer0.org2")
            .world_state()
            .get_private(&ns, &col, &pkey)
            .map(|v| v.value.clone());
        assert_eq!(v1, v2);
        assert!(v1.is_some());
        for nm in ["peer0.org3", "peer0.org4"] {
            assert!(net
                .peer(nm)
                .world_state()
                .get_private(&ns, &col, &pkey)
                .is_none());
            assert!(net
                .peer(nm)
                .world_state()
                .get_private_hash(&ns, &col, &pkey)
                .is_some());
        }
    }
}

#[test]
fn hashed_state_version_matches_plaintext_version() {
    let mut net = pdc_network(801);
    net.submit_transaction(
        "client0.org2",
        "guarded",
        "write",
        &["k", "9"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    let ns = ChaincodeId::new("guarded");
    let col = CollectionName::new("PDC1");
    let member_version = net
        .peer("peer0.org1")
        .world_state()
        .get_private(&ns, &col, "k")
        .unwrap()
        .version;
    let (_, non_member_version) = net
        .peer("peer0.org3")
        .world_state()
        .get_private_hash(&ns, &col, "k")
        .unwrap();
    assert_eq!(member_version, non_member_version);
}

#[test]
fn mvcc_rejects_stale_update_between_endorsement_and_commit() {
    let mut net = pdc_network(802);
    net.submit_transaction(
        "client0.org1",
        "guarded",
        "write",
        &["k", "1"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();

    // Endorse an "add" now (reads version of the current commit)...
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(880),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        net.channel().clone(),
        ChaincodeId::new("guarded"),
        "add",
        vec![b"k".to_vec(), b"1".to_vec()],
        Default::default(),
    );
    let r1 = net.endorse("peer0.org1", &proposal).unwrap();
    let r2 = net.endorse("peer0.org2", &proposal).unwrap();
    let (stale_tx, _) = client.assemble_transaction(&proposal, &[r1, r2]).unwrap();

    // ...then let a conflicting write commit first.
    net.submit_transaction(
        "client0.org2",
        "guarded",
        "write",
        &["k", "2"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();

    let tx_id = stale_tx.tx_id.clone();
    net.submit(stale_tx);
    for _ in 0..200 {
        net.advance(1);
        if net.transaction_status(&tx_id).is_some() {
            break;
        }
    }
    assert_eq!(
        net.transaction_status(&tx_id),
        Some(TxValidationCode::MvccReadConflict)
    );
    // The conflicting value stands.
    assert_eq!(
        net.peer("peer0.org1")
            .world_state()
            .get_private(
                &ChaincodeId::new("guarded"),
                &CollectionName::new("PDC1"),
                "k"
            )
            .unwrap()
            .value,
        b"2"
    );
}

#[test]
fn versions_increase_monotonically() {
    let mut net = pdc_network(803);
    let mut last = Version::new(0, 0);
    for i in 1..=5 {
        net.submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["k", &i.to_string()],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
        let v = net
            .peer("peer0.org1")
            .world_state()
            .get_private(
                &ChaincodeId::new("guarded"),
                &CollectionName::new("PDC1"),
                "k",
            )
            .unwrap()
            .version;
        assert!(
            v > last || (i == 1 && v >= last),
            "iteration {i}: {v} !> {last}"
        );
        last = v;
    }
}

#[test]
fn gossip_total_loss_still_converges_via_pull() {
    let mut net = pdc_network(804);
    net.gossip_mut().set_drop_rate(1.0);
    net.submit_transaction(
        "client0.org1",
        "guarded",
        "write",
        &["k", "5"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    for member in ["peer0.org1", "peer0.org2"] {
        assert_eq!(
            net.peer(member)
                .world_state()
                .get_private(
                    &ChaincodeId::new("guarded"),
                    &CollectionName::new("PDC1"),
                    "k"
                )
                .unwrap()
                .value,
            b"5",
            "{member}"
        );
    }
}
