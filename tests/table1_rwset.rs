//! Table I reproduction: read/write-set contents for the four transaction
//! types, produced by real chaincode execution against a peer snapshot
//! (not hand-built rwsets).

use fabric_pdc::prelude::*;
use fabric_pdc::types::Version;
use std::sync::Arc;

const COL: &str = "PDC1";

/// Builds a network whose PDC holds `k1 = val1` at version (block 1, tx 0)
/// and returns it (the paper's Table I premises: key `k1`, version 1).
fn seeded_network() -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(500)
        .build();
    let def = ChaincodeDefinition::new("guarded").with_collection(
        CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_member_only_read(false),
    );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained(COL)));
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["k1", "41"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    net
}

/// Endorses one proposal at a member peer and returns the collection's
/// hashed rwset from the proposal response.
fn rwset_of(
    net: &mut FabricNetwork,
    function: &str,
    args: &[&str],
) -> fabric_pdc::types::CollectionHashedRwSet {
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(777),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        net.channel().clone(),
        ChaincodeId::new("guarded"),
        function,
        args.iter().map(|a| a.as_bytes().to_vec()).collect(),
        Default::default(),
    );
    let response = net.endorse("peer0.org1", &proposal).unwrap();
    response.payload.results.ns_rwsets[0].collections[0].clone()
}

#[test]
fn read_only_row() {
    let mut net = seeded_network();
    let rwset = rwset_of(&mut net, "read", &["k1"]);
    assert_eq!(rwset.kind(), TxKind::ReadOnly);
    // Read set: (key, version); the version is the seeding commit's height.
    assert_eq!(rwset.reads.len(), 1);
    assert_eq!(rwset.reads[0].key_hash, sha256(b"k1"));
    assert_eq!(rwset.reads[0].version, Some(Version::new(0, 0)));
    // Write set: NULL.
    assert!(rwset.writes.is_empty());
}

#[test]
fn write_only_row() {
    let mut net = seeded_network();
    let rwset = rwset_of(&mut net, "write", &["k1", "41"]);
    assert_eq!(rwset.kind(), TxKind::WriteOnly);
    // Read set: NULL — this is what lets any peer endorse it.
    assert!(rwset.reads.is_empty());
    assert_eq!(rwset.writes.len(), 1);
    assert_eq!(rwset.writes[0].key_hash, sha256(b"k1"));
    assert_eq!(rwset.writes[0].value_hash, Some(sha256(b"41")));
    assert!(!rwset.writes[0].is_delete);
}

#[test]
fn read_write_row() {
    let mut net = seeded_network();
    let rwset = rwset_of(&mut net, "add", &["k1", "1"]);
    assert_eq!(rwset.kind(), TxKind::ReadWrite);
    assert_eq!(rwset.reads.len(), 1);
    assert_eq!(rwset.reads[0].version, Some(Version::new(0, 0)));
    assert_eq!(rwset.writes.len(), 1);
    assert_eq!(rwset.writes[0].value_hash, Some(sha256(b"42")));
    assert!(!rwset.writes[0].is_delete);
}

#[test]
fn delete_only_row() {
    let mut net = seeded_network();
    let rwset = rwset_of(&mut net, "delete", &["k1"]);
    assert_eq!(rwset.kind(), TxKind::DeleteOnly);
    // Read set: NULL; write set: (key, null, is_delete = true).
    assert!(rwset.reads.is_empty());
    assert_eq!(rwset.writes.len(), 1);
    assert_eq!(rwset.writes[0].value_hash, None);
    assert!(rwset.writes[0].is_delete);
}
