//! State-based (key-level) endorsement end to end: the Fabric machinery
//! (`validator_keylevel.go`) the paper cites for Use Case 2. Key-level
//! policies govern *writes* to a key; reads remain governed by the
//! chaincode-level policy — the same asymmetry the paper exploits for PDC.

use fabric_pdc::chaincode::samples::SbeDemo;
use fabric_pdc::prelude::*;
use std::sync::Arc;

fn network(seed: u64) -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("sbe"), Arc::new(SbeDemo));
    net
}

#[test]
fn key_level_policy_governs_writes() {
    let mut net = network(910);
    // Create the key and pin it to AND(org1, org2).
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "put",
            &["k1", "v1"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "set_policy",
            &["k1", "AND('Org1MSP.peer','Org2MSP.peer')"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());

    // A write endorsed by org1 + org3 satisfies MAJORITY (2 of 3) but NOT
    // the key-level AND(org1, org2): rejected.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "put",
            &["k1", "attacker"],
            &[],
            &["peer0.org1", "peer0.org3"],
        )
        .unwrap();
    assert_eq!(
        outcome.validation_code,
        TxValidationCode::EndorsementPolicyFailure
    );
    // State unchanged.
    let v = net
        .peer("peer0.org2")
        .world_state()
        .get_public(&ChaincodeId::new("sbe"), "k1")
        .unwrap();
    assert_eq!(v.value, b"v1");

    // The compliant endorser set still works.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "put",
            &["k1", "v2"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
}

#[test]
fn reads_ignore_key_level_policy_like_use_case_2() {
    // The same asymmetry as the paper's Use Case 2: key-level policies
    // never govern read-only transactions.
    let mut net = network(911);
    net.submit_transaction(
        "client0.org1",
        "sbe",
        "put",
        &["k1", "v1"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    net.submit_transaction(
        "client0.org1",
        "sbe",
        "set_policy",
        &["k1", "AND('Org1MSP.peer','Org2MSP.peer')"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();

    // A read-only transaction endorsed by org1 + org3 — the key-level
    // policy would reject this set, but reads only face MAJORITY.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "get",
            &["k1"],
            &[],
            &["peer0.org1", "peer0.org3"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    assert_eq!(outcome.payload, b"v1");
}

#[test]
fn changing_the_policy_requires_satisfying_the_existing_one() {
    let mut net = network(912);
    net.submit_transaction(
        "client0.org1",
        "sbe",
        "put",
        &["k1", "v1"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    net.submit_transaction(
        "client0.org1",
        "sbe",
        "set_policy",
        &["k1", "AND('Org1MSP.peer','Org2MSP.peer')"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();

    // org1 + org3 try to *loosen* the policy: must fail the existing AND.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "set_policy",
            &["k1", "OR('Org3MSP.peer')"],
            &[],
            &["peer0.org1", "peer0.org3"],
        )
        .unwrap();
    assert_eq!(
        outcome.validation_code,
        TxValidationCode::EndorsementPolicyFailure
    );

    // Clearing it with the right endorsers works; afterwards MAJORITY
    // governs writes again.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "clear_policy",
            &["k1"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "sbe",
            "put",
            &["k1", "v3"],
            &[],
            &["peer0.org1", "peer0.org3"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
}

#[test]
fn policy_is_queryable_after_commit() {
    let mut net = network(913);
    net.submit_transaction(
        "client0.org1",
        "sbe",
        "set_policy",
        &["k1", "OR('Org2MSP.peer')"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    let payload = net
        .evaluate_transaction("client0.org1", "peer0.org3", "sbe", "get_policy", &["k1"])
        .unwrap();
    assert_eq!(payload, b"OR('Org2MSP.peer')");
}
