//! Range queries and the history index end to end, including the MVCC
//! behaviour of range reads.

use fabric_pdc::prelude::*;
use fabric_pdc::wire::Decode;
use std::sync::Arc;

fn network(seed: u64) -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    net
}

fn create(net: &mut FabricNetwork, id: &str, value: &str) {
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "assets",
            "CreateAsset",
            &[id, "red", "alice", value],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
}

#[test]
fn range_query_returns_all_assets_in_order() {
    let mut net = network(920);
    for (i, id) in ["a1", "a3", "a2"].iter().enumerate() {
        create(&mut net, id, &format!("{}", 100 + i));
    }
    let payload = net
        .evaluate_transaction("client0.org1", "peer0.org3", "assets", "GetAllAssets", &[])
        .unwrap();
    let assets_bytes = Vec::<Vec<u8>>::from_wire(&payload).unwrap();
    let ids: Vec<String> = assets_bytes
        .iter()
        .map(|b| Asset::from_bytes(b).unwrap().id)
        .collect();
    assert_eq!(ids, vec!["a1", "a2", "a3"]);
}

#[test]
fn range_read_is_mvcc_protected_on_returned_keys() {
    let mut net = network(921);
    create(&mut net, "a1", "100");

    // Endorse a range query now (records a1 at its current version)...
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(930),
        DefenseConfig::original(),
    );
    let proposal = client.create_proposal(
        net.channel().clone(),
        ChaincodeId::new("assets"),
        "GetAllAssets",
        vec![],
        Default::default(),
    );
    let r1 = net.endorse("peer0.org1", &proposal).unwrap();
    let r2 = net.endorse("peer0.org2", &proposal).unwrap();
    let (stale_tx, _) = client.assemble_transaction(&proposal, &[r1, r2]).unwrap();

    // ...then update a1 so the recorded version goes stale.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "assets",
            "UpdateAsset",
            &["a1", "blue", "alice", "150"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());

    let tx_id = stale_tx.tx_id.clone();
    net.submit(stale_tx);
    for _ in 0..200 {
        net.advance(1);
        if net.transaction_status(&tx_id).is_some() {
            break;
        }
    }
    assert_eq!(
        net.transaction_status(&tx_id),
        Some(TxValidationCode::MvccReadConflict)
    );
}

#[test]
fn history_tracks_updates_and_deletes() {
    let mut net = network(922);
    create(&mut net, "a1", "100");
    net.submit_transaction(
        "client0.org1",
        "assets",
        "TransferAsset",
        &["a1", "bob"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();
    net.submit_transaction(
        "client0.org1",
        "assets",
        "DeleteAsset",
        &["a1"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap();

    // Every peer's history index agrees: create, transfer, delete.
    for peer in ["peer0.org1", "peer0.org2", "peer0.org3"] {
        let h = net
            .peer(peer)
            .history()
            .key_history(&ChaincodeId::new("assets"), "a1");
        assert_eq!(h.len(), 3, "{peer}");
        assert!(!h[0].is_delete);
        assert!(!h[1].is_delete);
        assert!(h[2].is_delete);
        assert_eq!(
            Asset::from_bytes(h[1].value.as_ref().unwrap())
                .unwrap()
                .owner,
            "bob"
        );
        // Versions strictly increase.
        assert!(h[0].version < h[1].version && h[1].version < h[2].version);
    }

    // The chaincode-level history query sees the same record.
    let payload = net
        .evaluate_transaction(
            "client0.org1",
            "peer0.org3",
            "assets",
            "GetAssetHistory",
            &["a1"],
        )
        .unwrap();
    let text = String::from_utf8(payload).unwrap();
    assert_eq!(text.lines().count(), 3);
    assert!(text.lines().last().unwrap().ends_with("deleted"));
}

#[test]
fn invalid_transactions_leave_no_history() {
    let mut net = network(923);
    create(&mut net, "a1", "100");
    // A duplicate create fails at endorsement; nothing recorded.
    let err = net.submit_transaction(
        "client0.org1",
        "assets",
        "CreateAsset",
        &["a1", "red", "alice", "100"],
        &[],
        &["peer0.org1", "peer0.org2"],
    );
    assert!(err.is_err());
    let h = net
        .peer("peer0.org1")
        .history()
        .key_history(&ChaincodeId::new("assets"), "a1");
    assert_eq!(h.len(), 1);
}
