//! §V-A6: attacks when a collection-level endorsement policy
//! `AND(org1, org2)` is defined — without New Feature 1 the read-only
//! attack still works, because reads are validated with the chaincode-level
//! policy only (Use Case 2).

use fabric_pdc::attacks::{build_lab, run_attack, AttackKind, LabConfig};
use fabric_pdc::prelude::*;

fn config(seed: u64) -> LabConfig {
    LabConfig {
        collection_policy: Some("AND('Org1MSP.peer','Org2MSP.peer')".to_string()),
        seed,
        ..LabConfig::default()
    }
}

#[test]
fn read_only_attack_still_works() {
    let mut lab = build_lab(&config(300));
    let outcome = run_attack(&mut lab, AttackKind::FakeRead);
    assert!(
        outcome.succeeded,
        "read-only bypasses the collection policy: {}",
        outcome.note
    );
    assert_eq!(outcome.validation_code, Some(TxValidationCode::Valid));
}

#[test]
fn write_related_attacks_fail_policy_check() {
    for (i, kind) in [
        AttackKind::FakeWrite,
        AttackKind::FakeReadWrite,
        AttackKind::FakeDelete,
    ]
    .into_iter()
    .enumerate()
    {
        let mut lab = build_lab(&config(310 + i as u64));
        let outcome = run_attack(&mut lab, kind);
        assert!(!outcome.succeeded, "{kind} should fail: {}", outcome.note);
        assert_eq!(
            outcome.validation_code,
            Some(TxValidationCode::EndorsementPolicyFailure),
            "{kind}"
        );
    }
}

#[test]
fn victim_state_is_untouched_by_failed_attacks() {
    let mut lab = build_lab(&config(320));
    let _ = run_attack(&mut lab, AttackKind::FakeWrite);
    let v = lab
        .net
        .peer("peer0.org2")
        .world_state()
        .get_private(
            &ChaincodeId::new("guarded"),
            &CollectionName::new("PDC1"),
            "k1",
        )
        .unwrap();
    // Still the genuine value.
    assert_eq!(v.value, b"12");
}

#[test]
fn honest_transactions_still_pass_the_collection_policy() {
    // The defense must not break legitimate use: a write endorsed by both
    // members satisfies AND(org1, org2).
    let mut lab = build_lab(&config(330));
    let outcome = lab
        .net
        .submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["k1", "13"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
}
