//! §V-D: with the proposed new features enabled, every attack from
//! §V-A/§V-B fails, and honest traffic still works.

use fabric_pdc::attacks::{
    build_lab, run_attack, run_read_leakage_scenario, run_write_leakage_scenario, AttackKind,
    LabConfig,
};
use fabric_pdc::prelude::*;

/// The paper's full modified framework: Feature 1, Feature 2, and the
/// supplemental non-member endorsement filter, plus a collection-level
/// policy as §IV-C recommends for writes.
fn hardened_config(seed: u64) -> LabConfig {
    LabConfig {
        collection_policy: Some("AND('Org1MSP.peer','Org2MSP.peer')".to_string()),
        defense: DefenseConfig::hardened(),
        seed,
        ..LabConfig::default()
    }
}

#[test]
fn all_injection_attacks_fail_on_the_modified_framework() {
    for (i, kind) in AttackKind::all().into_iter().enumerate() {
        let mut lab = build_lab(&hardened_config(700 + i as u64));
        let outcome = run_attack(&mut lab, kind);
        assert!(!outcome.succeeded, "{kind} must fail: {}", outcome.note);
    }
}

#[test]
fn feature1_alone_stops_read_injection() {
    let cfg = LabConfig {
        collection_policy: Some("AND('Org1MSP.peer','Org2MSP.peer')".to_string()),
        defense: DefenseConfig::feature1(),
        seed: 710,
        ..LabConfig::default()
    };
    let mut lab = build_lab(&cfg);
    let outcome = run_attack(&mut lab, AttackKind::FakeRead);
    assert!(!outcome.succeeded);
    assert_eq!(
        outcome.validation_code,
        Some(TxValidationCode::EndorsementPolicyFailure)
    );
}

#[test]
fn non_member_filter_alone_stops_all_injection_even_without_collection_policy() {
    // The supplemental filter needs no collection-level policy at all.
    let cfg = LabConfig {
        defense: DefenseConfig {
            filter_non_member_endorsers: true,
            ..DefenseConfig::original()
        },
        seed: 720,
        ..LabConfig::default()
    };
    for kind in AttackKind::all() {
        let mut lab = build_lab(&cfg);
        let outcome = run_attack(&mut lab, kind);
        assert!(!outcome.succeeded, "{kind}: {}", outcome.note);
    }
}

#[test]
fn feature2_stops_both_leakages() {
    assert!(!run_read_leakage_scenario(DefenseConfig::feature2(), 730).leaked);
    assert!(!run_write_leakage_scenario(DefenseConfig::feature2(), 731).leaked);
}

#[test]
fn feature2_client_still_receives_plaintext() {
    // The defense must preserve the PDC read service: the client gets the
    // value; only the committed transaction carries the hash.
    let s = run_read_leakage_scenario(DefenseConfig::feature2(), 732);
    assert!(!s.leaked);
    // The scenario asserts internally that the client-visible payload
    // equals the secret; additionally the blocks must carry its hash.
    assert!(s
        .recovered
        .iter()
        .any(|r| r.payload == sha256(&s.secret).0.to_vec()));
}

#[test]
fn honest_traffic_unaffected_by_full_defenses() {
    // An all-honest network running the fully modified framework.
    use std::sync::Arc;
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(740)
        .defense(DefenseConfig::hardened())
        .build();
    let def = ChaincodeDefinition::new("guarded").with_collection(
        CollectionConfig::membership_of("PDC1", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_member_only_read(false)
            .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
    );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained("PDC1")));

    // Honest write by both members.
    let outcome = net
        .submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["k1", "14"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    // Honest audited read via the full three-phase flow (feature 2 path):
    // the client still receives the plaintext.
    let read = net
        .submit_transaction(
            "client0.org1",
            "guarded",
            "read",
            &["k1"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(read.validation_code.is_valid());
    assert_eq!(read.payload, b"14");
}
