//! Failure injection across the composed network: orderer crashes and
//! gossip loss must not break safety (consistent ledgers) or liveness
//! (transactions still commit while a Raft quorum survives).

use fabric_pdc::prelude::*;
use std::sync::Arc;

fn network(seed: u64) -> FabricNetwork {
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    let def = ChaincodeDefinition::new("guarded").with_collection(
        CollectionConfig::membership_of("PDC1", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
            .with_member_only_read(false),
    );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained("PDC1")));
    net
}

fn create(net: &mut FabricNetwork, id: &str) -> TxValidationCode {
    net.submit_transaction(
        "client0.org1",
        "assets",
        "CreateAsset",
        &[id, "red", "alice", "1"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )
    .unwrap()
    .validation_code
}

#[test]
fn ordering_survives_minority_orderer_crashes() {
    let mut net = network(940);
    assert!(create(&mut net, "before").is_valid());

    // Crash one of the three Raft orderers; quorum (2/3) survives.
    net.crash_orderer(2);
    assert!(net.wait_for_orderer(5000), "raft re-elects");
    assert!(create(&mut net, "after-one-crash").is_valid());

    // Ledgers stay consistent at every peer.
    let names = net.peer_names();
    let tip = net.peer(&names[0]).block_store().tip_hash();
    for name in &names {
        assert_eq!(net.peer(name).block_store().tip_hash(), tip, "{name}");
        assert!(net.peer(name).block_store().verify_chain(), "{name}");
        assert!(net
            .peer(name)
            .world_state()
            .get_public(&ChaincodeId::new("assets"), "after-one-crash")
            .is_some());
    }
}

#[test]
fn pdc_flow_survives_orderer_crash_and_gossip_loss_together() {
    let mut net = network(941);
    net.crash_orderer(3);
    assert!(net.wait_for_orderer(5000));
    net.gossip_mut().set_drop_rate(0.8);

    let outcome = net
        .submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["k1", "7"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
    assert!(outcome.validation_code.is_valid());
    // Commit-time pull reconciliation still delivered plaintext to members.
    for member in ["peer0.org1", "peer0.org2"] {
        assert_eq!(
            net.peer(member)
                .world_state()
                .get_private(
                    &ChaincodeId::new("guarded"),
                    &CollectionName::new("PDC1"),
                    "k1"
                )
                .unwrap()
                .value,
            b"7",
            "{member}"
        );
    }
}

#[test]
fn many_transactions_across_crash_keep_unique_heights() {
    let mut net = network(942);
    for i in 0..5 {
        assert!(create(&mut net, &format!("a{i}")).is_valid());
    }
    net.crash_orderer(1);
    assert!(net.wait_for_orderer(5000));
    for i in 5..10 {
        assert!(create(&mut net, &format!("a{i}")).is_valid());
    }
    // All ten assets exist exactly once; the chain has no gaps.
    let peer = net.peer("peer0.org3");
    assert!(peer.block_store().verify_chain());
    for i in 0..10 {
        assert!(peer
            .world_state()
            .get_public(&ChaincodeId::new("assets"), &format!("a{i}"))
            .is_some());
    }
}
