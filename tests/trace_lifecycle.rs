//! Trace continuity: every committed transaction must be resolvable from
//! its tx ID to a complete cross-node lifecycle timeline — client,
//! endorsing peers, orderer, Raft, and every committing peer — and the
//! trace must be identical in shape regardless of the parallel-validation
//! knob. Flight-recorder dumps triggered by attack signals must carry the
//! same audit evidence parallel and sequential.

use fabric_pdc::prelude::*;
use fabric_pdc::telemetry::FlightEntry;
use std::sync::Arc;

const ORGS: [&str; 3] = ["Org1MSP", "Org2MSP", "Org3MSP"];

fn traced_network(seed: u64, parallel: bool) -> (FabricNetwork, Telemetry) {
    let telemetry = Telemetry::with_flight_recorder(512);
    let mut net = NetworkBuilder::new("ch1")
        .orgs(&ORGS)
        .seed(seed)
        .parallel_validation(parallel)
        .with_telemetry(telemetry.clone())
        .build();
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    (net, telemetry)
}

/// Submits `count` asset creations and returns their tx IDs.
fn run_workload(net: &mut FabricNetwork, count: usize) -> Vec<TxId> {
    (0..count)
        .map(|i| {
            let asset = format!("a{i}");
            let outcome = net
                .submit_transaction(
                    "client0.org1",
                    "assets",
                    "CreateAsset",
                    &[&asset, "red", "alice", "100"],
                    &[],
                    &["peer0.org1", "peer0.org2"],
                )
                .expect("commit");
            assert!(outcome.validation_code.is_valid());
            outcome.tx_id
        })
        .collect()
}

/// Every committed transaction resolves — from its tx ID alone — to a
/// complete five-phase timeline whose spans cover the client, both
/// endorsing peers, the orderer, Raft, and all three committing peers.
#[test]
fn committed_transactions_have_complete_cross_node_timelines() {
    for parallel in [false, true] {
        let (mut net, telemetry) = traced_network(21, parallel);
        let tx_ids = run_workload(&mut net, 3);
        let records = telemetry.trace().expect("sink").records();

        for tx_id in &tx_ids {
            let timeline = TxTimeline::collect(&records, tx_id.as_str());
            assert!(
                timeline.complete(),
                "tx {tx_id} (parallel={parallel}) missing phases: {:?}",
                timeline.phases()
            );
            assert_eq!(
                timeline.trace_id,
                TraceContext::for_tx(tx_id.as_str()).trace_id,
                "trace id must derive from the tx id"
            );
            let nodes = timeline.nodes();
            assert!(nodes.contains(&"client0.org1"), "client span: {nodes:?}");
            for peer in ["peer0.org1", "peer0.org2", "peer0.org3"] {
                assert!(nodes.contains(&peer), "{peer} span: {nodes:?}");
            }
            assert!(nodes.contains(&"orderer"), "orderer span: {nodes:?}");
            assert!(
                nodes.iter().any(|n| n.starts_with("raft")),
                "raft span: {nodes:?}"
            );
            // Two endorsing peers, three committing peers.
            let endorse_spans = records
                .iter()
                .filter(|r| r.trace_id == timeline.trace_id && r.name == "peer.endorse")
                .count();
            assert_eq!(endorse_spans, 2, "one endorse span per endorsing peer");
            let commit_spans = records
                .iter()
                .filter(|r| r.trace_id == timeline.trace_id && r.name == "peer.commit")
                .count();
            assert_eq!(commit_spans, 3, "one commit span per committing peer");
        }
    }
}

/// The parallelism knob must not change trace identity: the same seeded
/// workload yields the same tx IDs, the same trace IDs, and the same set
/// of traced span names on both settings.
#[test]
fn trace_identity_is_parallelism_invariant() {
    let mut shapes = Vec::new();
    for parallel in [false, true] {
        let (mut net, telemetry) = traced_network(22, parallel);
        let tx_ids = run_workload(&mut net, 2);
        let records = telemetry.trace().expect("sink").records();
        let shape: Vec<(TxId, u64, Vec<String>)> = tx_ids
            .into_iter()
            .map(|tx_id| {
                let timeline = TxTimeline::collect(&records, tx_id.as_str());
                let mut names: Vec<String> = records
                    .iter()
                    .filter(|r| r.trace_id == timeline.trace_id)
                    .map(|r| format!("{}@{}", r.name, r.node))
                    .collect();
                names.sort();
                (tx_id, timeline.trace_id, names)
            })
            .collect();
        shapes.push(shape);
    }
    assert_eq!(
        shapes[0], shapes[1],
        "trace shape depends on the parallel-validation knob"
    );
}

/// Builds a block with an MVCC conflict (two transfers of the same asset
/// in one block), commits it, and returns the flight-recorder dumps'
/// audit signatures.
fn mvcc_conflict_dump_signatures(parallel: bool) -> Vec<Vec<(&'static str, TxId)>> {
    let (mut net, telemetry) = traced_network(23, parallel);
    run_workload(&mut net, 1); // commits asset a0

    // Endorse two conflicting transfers against the same committed state,
    // then submit both before advancing: they land in one block and the
    // second must fail MVCC validation — an attack-signal audit event
    // that triggers a flight-recorder dump on every committing peer.
    let channel = net.channel().clone();
    let mut txs = Vec::new();
    for owner in ["bob", "carol"] {
        let proposal = net.client_mut("client0.org1").create_proposal(
            channel.clone(),
            ChaincodeId::new("assets"),
            "TransferAsset",
            vec![b"a0".to_vec(), owner.as_bytes().to_vec()],
            Default::default(),
        );
        let responses = vec![
            net.endorse("peer0.org1", &proposal).expect("endorse"),
            net.endorse("peer0.org2", &proposal).expect("endorse"),
        ];
        let (tx, _) = net
            .client_mut("client0.org1")
            .assemble_transaction(&proposal, &responses)
            .expect("assemble");
        txs.push(tx);
    }
    let tx_ids: Vec<TxId> = txs.iter().map(|tx| tx.tx_id.clone()).collect();
    for tx in txs {
        net.submit(tx);
    }
    net.advance(20);
    assert_eq!(
        net.transaction_status(&tx_ids[0]),
        Some(TxValidationCode::Valid)
    );
    assert_eq!(
        net.transaction_status(&tx_ids[1]),
        Some(TxValidationCode::MvccReadConflict)
    );

    let recorder = telemetry.flight_recorder().expect("recorder");
    let dumps = recorder.dumps();
    assert!(!dumps.is_empty(), "MVCC conflict must trigger flight dumps");
    for dump in &dumps {
        assert!(
            dump.entries
                .iter()
                .any(|e| matches!(e, FlightEntry::Audit(_))),
            "a dump carries the triggering audit evidence"
        );
    }
    dumps.iter().map(|d| d.audit_signature()).collect()
}

/// Flight-recorder dumps are evidence; the audit trail they carry must
/// not depend on how the block was validated.
#[test]
fn flight_dumps_carry_identical_audit_evidence_across_parallelism() {
    let sequential = mvcc_conflict_dump_signatures(false);
    let parallel = mvcc_conflict_dump_signatures(true);
    assert_eq!(
        sequential, parallel,
        "flight-dump audit evidence depends on stage-1 parallelism"
    );
}
